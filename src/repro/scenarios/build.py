"""Build live simulations from declarative :class:`ScenarioSpec` objects.

This module is the single place where scenario names are resolved into
concrete objects: workload kinds into :class:`~repro.workloads.base.
Application` instances, protocol names into
:mod:`repro.ftprotocols.registry` factories, network model names into
:class:`~repro.simulator.network.NetworkModel` subclasses, clustering
methods into :mod:`repro.clustering` calls, and failure specs into a
:class:`~repro.simulator.failures.FailureInjector`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, List, Optional

from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.partitioner import block_partition, partition
from repro.clustering.placement import aligned_clusters, misaligned_clusters
from repro.clustering.presets import TABLE1_CLUSTER_COUNTS
from repro.errors import ConfigurationError
from repro.ftprotocols.registry import make_protocol
from repro.scenarios.spec import (
    ClusteringSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.network import (
    EthernetTCPModel,
    MyrinetMXModel,
    NetworkModel,
    RoutedNetworkModel,
)
from repro.simulator.protocol_api import ProtocolHooks
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.topology import Topology
from repro.topology import build_topology as _build_topology_preset
from repro.workloads import (
    MasterWorkerApplication,
    PingPongApplication,
    PipelineApplication,
    RingApplication,
    Stencil1DApplication,
    Stencil2DApplication,
)
from repro.workloads.nas import NAS_BENCHMARKS

#: workload kind -> factory(nprocs, iterations, **params).
WORKLOAD_FACTORIES: Dict[str, Callable[..., Any]] = {
    "netpipe": PingPongApplication,
    "ring": RingApplication,
    "pipeline": PipelineApplication,
    "stencil1d": Stencil1DApplication,
    "stencil2d": Stencil2DApplication,
    "master-worker": MasterWorkerApplication,
}
WORKLOAD_FACTORIES.update(NAS_BENCHMARKS)  # "bt", "cg", "ft", "lu", "mg", "sp"

#: network model name -> NetworkModel subclass.
NETWORK_MODELS: Dict[str, Callable[..., NetworkModel]] = {
    "base": NetworkModel,
    "myrinet-mx": MyrinetMXModel,
    "ethernet-tcp": EthernetTCPModel,
}

#: protocol names that run without any protocol hooks at all.
BARE_PROTOCOLS = ("none",)


def available_workloads() -> List[str]:
    return sorted(WORKLOAD_FACTORIES)


def available_networks() -> List[str]:
    return sorted(NETWORK_MODELS)


def build_application(spec: WorkloadSpec) -> Any:
    """Instantiate the workload described by ``spec``."""
    try:
        factory = WORKLOAD_FACTORIES[spec.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload kind {spec.kind!r}; available: "
            f"{', '.join(available_workloads())}"
        ) from None
    return factory(nprocs=spec.nprocs, iterations=spec.iterations, **spec.params)


def to_network_spec(model: Optional[NetworkModel]):
    """Describe a live network model instance as a :class:`NetworkSpec`.

    Harness APIs historically accept ``NetworkModel`` instances; this maps
    one back onto a declarative spec (model name + field overrides) so those
    APIs can feed the campaign runner.  Only registered model classes are
    supported -- a hand-rolled subclass has no declarative name.
    """
    from repro.scenarios.spec import NetworkSpec

    if model is None:
        return NetworkSpec()
    for name, cls in NETWORK_MODELS.items():
        if type(model) is cls:
            reference = cls()
            overrides = {
                f.name: getattr(model, f.name)
                for f in dataclasses.fields(cls)
                if getattr(model, f.name) != getattr(reference, f.name)
            }
            # Normalise to pure JSON values so spec equality and spec hashes
            # do not depend on tuple-vs-list representation.
            overrides = json.loads(json.dumps(overrides))
            return NetworkSpec(model=name, overrides=overrides)
    raise ConfigurationError(
        f"cannot express network model {type(model).__name__} as a spec; "
        f"registered models: {', '.join(available_networks())}"
    )


def build_topology(topology: Optional[TopologySpec], nprocs: int) -> Optional[Topology]:
    """Materialise a :class:`TopologySpec` for ``nprocs`` ranks (None -> None)."""
    if topology is None:
        return None
    return _build_topology_preset(topology.preset, nprocs, **topology.params)


def build_network(spec: ScenarioSpec) -> NetworkModel:
    try:
        model_cls = NETWORK_MODELS[spec.network.model]
    except KeyError:
        raise ConfigurationError(
            f"unknown network model {spec.network.model!r}; available: "
            f"{', '.join(available_networks())}"
        ) from None
    model = model_cls(**spec.network.overrides)
    topology = build_topology(spec.network.topology, spec.workload.nprocs)
    if topology is None:
        return model
    return RoutedNetworkModel(model, topology)


def resolve_clusters(
    clustering: ClusteringSpec,
    workload: WorkloadSpec,
    topology: Optional[TopologySpec] = None,
) -> Optional[List[List[int]]]:
    """Materialise the cluster partition a clustering spec describes.

    The ``topology*`` methods place protocol clusters relative to the
    scenario's physical topology and require a non-flat one; ``topology``
    is the scenario's ``network.topology`` spec, or an already-built
    :class:`~repro.topology.topology.Topology` to reuse.
    """
    if clustering.method == "none":
        return None
    if clustering.method == "explicit":
        return [list(c) for c in clustering.clusters]
    if clustering.method == "block":
        return block_partition(workload.nprocs, clustering.num_clusters)
    if clustering.method.startswith("topology"):
        if isinstance(topology, Topology):
            topo = topology
        else:
            topo = build_topology(topology, workload.nprocs)
        if topo is None or not topo.has_shared_links:
            raise ConfigurationError(
                f"clustering method {clustering.method!r} needs a non-flat "
                "network.topology in the scenario spec"
            )
        if clustering.method in ("topology", "topology-cluster"):
            return aligned_clusters(topo, granularity="cluster")
        if clustering.method == "topology-node":
            return aligned_clusters(topo, granularity="node")
        return misaligned_clusters(topo, clustering.num_clusters)
    # Graph-partitioning methods need the workload's analytic matrix.
    app = build_application(workload)
    if clustering.matrix == "full":
        matrix = app.full_run_matrix()
    else:
        matrix = app.communication_matrix()
    graph = CommunicationGraph.from_matrix(matrix)
    if clustering.method == "preset":
        try:
            k = TABLE1_CLUSTER_COUNTS[workload.kind]
        except KeyError:
            raise ConfigurationError(
                f"clustering method 'preset' needs a NAS kernel workload "
                f"(one of {', '.join(sorted(TABLE1_CLUSTER_COUNTS))}), "
                f"got {workload.kind!r}"
            ) from None
    else:
        k = clustering.num_clusters
    k = min(k, workload.nprocs)
    return partition(
        graph, k, method="auto", balance_tolerance=clustering.balance_tolerance
    ).clusters


def build_protocol(
    spec: ScenarioSpec, topology: Optional[Topology] = None
) -> Optional[ProtocolHooks]:
    """Instantiate the protocol described by ``spec`` (None for a bare run).

    ``topology`` optionally passes an already-built physical topology so
    topology-aware clustering reuses it instead of rebuilding from the spec.
    """
    name = spec.protocol.name
    if name in BARE_PROTOCOLS:
        return None
    options = dict(spec.protocol.options)
    clusters = resolve_clusters(
        spec.protocol.clustering,
        spec.workload,
        topology=topology if topology is not None else spec.network.topology,
    )
    if clusters is not None:
        options["clusters"] = clusters
    return make_protocol(name, **options)


def build_failures(
    spec: ScenarioSpec, topology: Optional[Topology] = None
) -> Optional[FailureInjector]:
    """Materialise the spec's failure source into an injector.

    Explicit ``failures`` map one-to-one onto events; a ``fault_model``
    draws its :class:`~repro.faults.trace.FailureTrace` here, ahead of
    simulation (``topology`` optionally passes the scenario's already-built
    physical topology so node/cluster fault scopes reuse it).  A fault
    model always gets an injector -- even for a replica whose draw came up
    empty -- so every Monte Carlo replica publishes the same metric paths.
    """
    if spec.fault_model is not None:
        from repro.faults.trace import generate_trace

        if not isinstance(topology, Topology):
            topology = build_topology(spec.network.topology, spec.workload.nprocs)
        trace = generate_trace(spec.fault_model, spec.workload.nprocs, topology)
        return FailureInjector(trace.to_failure_events())
    if not spec.failures:
        return None
    return FailureInjector(
        [
            FailureEvent(
                ranks=list(f.ranks),
                time=f.time,
                at_iteration=f.at_iteration,
                rank_trigger=f.rank_trigger,
            )
            for f in spec.failures
        ]
    )


def build_config(spec: ScenarioSpec) -> SimulationConfig:
    overrides = dict(spec.config)
    # Campaign scenarios default to the slim trace path; per-event records
    # must be opted into explicitly (containment / invariant scenarios).
    overrides.setdefault("record_trace_events", False)
    # The spec's execution mode seeds the config; an explicit config
    # override (e.g. forcing "exact" for a pinning test) wins.
    overrides.setdefault("execution", spec.execution)
    # Hybrid runs carry the spec's failure-free timing identity so the
    # director can reuse a shared warm-up calibration (repro.simulator
    # .calibration); exact runs never consult it.
    if overrides.get("execution") == "hybrid":
        overrides.setdefault("calibration_key", spec.calibration_key())
    valid = set(SimulationConfig.__dataclass_fields__) - {"network"}
    unknown = set(overrides) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown SimulationConfig overrides: {sorted(unknown)} "
            "(the network is set through NetworkSpec, not a config override)"
        )
    return SimulationConfig(network=build_network(spec), **overrides)


def build(spec: ScenarioSpec) -> Simulation:
    """Wire a :class:`Simulation` exactly as the spec declares it."""
    config = build_config(spec)
    network = config.network
    topology = network.topology if isinstance(network, RoutedNetworkModel) else None
    return Simulation(
        build_application(spec.workload),
        nprocs=spec.workload.nprocs,
        protocol=build_protocol(spec, topology=topology),
        failures=build_failures(spec, topology=topology),
        config=config,
    )
