#!/usr/bin/env python3
"""Quickstart: run a stencil application under HydEE and survive a failure.

The script

1. runs a 16-rank 2-D halo-exchange stencil natively (no fault tolerance) to
   obtain the reference results,
2. clusters the ranks with the communication-graph partitioner,
3. re-runs the application under HydEE with coordinated checkpoints every two
   iterations, injecting a fail-stop failure of rank 5,
4. shows that only rank 5's cluster rolled back and that the recovered
   execution produced exactly the reference results.
"""

from repro import HydEEConfig, HydEEProtocol, Simulation
from repro.clustering import cluster_application
from repro.core.invariants import check_all_recovery_invariants
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.workloads import Stencil2DApplication

NPROCS = 16
ITERATIONS = 8
FAILED_RANK = 5


def main() -> None:
    # 1. Failure-free reference (native MPI, no protocol).
    reference = Simulation(
        Stencil2DApplication(nprocs=NPROCS, iterations=ITERATIONS), nprocs=NPROCS
    ).run()
    print(f"reference run      : makespan = {reference.makespan * 1e3:.3f} ms")

    # 2. Cluster the processes.  For a 4x4 process grid the natural clusters
    #    are the four rows; on larger/irregular applications use the
    #    communication-graph partitioner instead (see
    #    examples/clustering_analysis.py):
    #        clusters = cluster_application(app, num_clusters=4)
    clusters = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]
    _ = cluster_application  # imported to show where the tool lives
    print(f"process clusters   : {clusters}")

    # 3. Run under HydEE with a failure of rank 5 after iteration 5.
    protocol = HydEEProtocol(
        HydEEConfig(clusters=clusters, checkpoint_interval=2, checkpoint_size_bytes=256 * 1024)
    )
    failures = FailureInjector([FailureEvent(ranks=[FAILED_RANK], at_iteration=5)])
    recovered = Simulation(
        Stencil2DApplication(nprocs=NPROCS, iterations=ITERATIONS),
        nprocs=NPROCS,
        protocol=protocol,
        failures=failures,
    ).run()

    # 4. Report containment and correctness.
    stats = recovered.stats
    print(f"run with failure   : makespan = {recovered.makespan * 1e3:.3f} ms")
    print(
        f"failure containment: {stats.ranks_rolled_back}/{NPROCS} ranks rolled back "
        f"({100 * stats.rolled_back_fraction:.1f}% -- only rank {FAILED_RANK}'s cluster)"
    )
    print(
        f"logging            : {stats.logged_messages} messages "
        f"({100 * stats.logged_fraction_bytes:.1f}% of application bytes), "
        f"{protocol.pstats.replayed_messages} replayed during recovery, "
        f"{protocol.pstats.suppressed_orphans} orphan messages suppressed"
    )
    print(f"results identical  : {recovered.rank_results == reference.rank_results}")

    summary = check_all_recovery_invariants(
        reference, recovered, protocol, failed_ranks=[FAILED_RANK]
    )
    print(f"paper invariants   : all checks passed ({', '.join(summary)})")


if __name__ == "__main__":
    main()
