#!/usr/bin/env python3
"""Quickstart: run a stencil application under HydEE and survive a failure.

The script

1. declares the failure-free reference and the failure run as
   :class:`ScenarioSpec` objects (the same declarative layer every
   experiment and campaign uses),
2. runs the reference through the campaign runner,
3. builds the HydEE scenario (four clusters, coordinated checkpoints every
   two iterations, a fail-stop failure of rank 5) and runs it,
4. shows that only rank 5's cluster rolled back and that the recovered
   execution produced exactly the reference results.
"""

from repro.campaign import run_campaign
from repro.core.invariants import check_all_recovery_invariants
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    build,
)

NPROCS = 16
ITERATIONS = 8
FAILED_RANK = 5


def main() -> None:
    workload = WorkloadSpec(kind="stencil2d", nprocs=NPROCS, iterations=ITERATIONS)
    # Per-event traces stay on: the invariant checks compare send sequences.
    config = {"record_trace_events": True}

    # 1. + 2. Failure-free reference (native MPI, no protocol).
    reference_spec = ScenarioSpec(
        name="quickstart:reference", workload=workload, config=config
    )
    reference = run_campaign([reference_spec], keep_artifacts=True).artifacts[0]
    print(f"reference run      : makespan = {reference.makespan * 1e3:.3f} ms")

    # 3. HydEE with four explicit clusters (a 4x4 grid split by rows; on
    #    larger/irregular applications use ClusteringSpec(method="partition")
    #    to run the communication-graph partitioner instead -- see
    #    examples/clustering_analysis.py) and a failure of rank 5 after
    #    iteration 5.
    clusters = ((0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (12, 13, 14, 15))
    hydee_spec = ScenarioSpec(
        name="quickstart:hydee-failure",
        workload=workload,
        protocol=ProtocolSpec(
            name="hydee",
            options={"checkpoint_interval": 2, "checkpoint_size_bytes": 256 * 1024},
            clustering=ClusteringSpec(method="explicit", clusters=clusters),
        ),
        failures=(FailureSpec(ranks=(FAILED_RANK,), at_iteration=5),),
        config=config,
    )
    print(f"process clusters   : {[list(c) for c in clusters]}")

    # The invariant battery needs the protocol object, so build the
    # simulation from the spec directly instead of going through a campaign.
    sim = build(hydee_spec)
    recovered = sim.run()
    protocol = sim.protocol

    # 4. Report containment and correctness.
    stats = recovered.stats
    print(f"run with failure   : makespan = {recovered.makespan * 1e3:.3f} ms")
    print(
        f"failure containment: {stats.ranks_rolled_back}/{NPROCS} ranks rolled back "
        f"({100 * stats.rolled_back_fraction:.1f}% -- only rank {FAILED_RANK}'s cluster)"
    )
    print(
        f"logging            : {stats.logged_messages} messages "
        f"({100 * stats.logged_fraction_bytes:.1f}% of application bytes), "
        f"{protocol.pstats.replayed_messages} replayed during recovery, "
        f"{protocol.pstats.suppressed_orphans} orphan messages suppressed"
    )
    print(f"results identical  : {recovered.rank_results == reference.rank_results}")

    summary = check_all_recovery_invariants(
        reference, recovered, protocol, failed_ranks=[FAILED_RANK]
    )
    print(f"paper invariants   : all checks passed ({', '.join(summary)})")


if __name__ == "__main__":
    main()
