#!/usr/bin/env python3
"""Run a NAS-like kernel under HydEE, fail a whole cluster, and recover.

This is the scenario the paper motivates: a large iterative HPC kernel (here
the CG communication pattern), process clustering computed from its
communication graph, coordinated checkpoints inside clusters, and a failure
that takes out several processes at once.  Only the affected cluster rolls
back; the messages it needs from other clusters are replayed from the
sender-based logs without any event logging.

Both runs are declared as scenario specs and executed as one campaign; the
cluster partition is computed up front (so the example can choose which
cluster to kill) and passed into the spec explicitly.
"""

import argparse

from repro.campaign import run_campaign
from repro.clustering import CommunicationGraph, evaluate_clustering, partition
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_application,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cg")
    parser.add_argument("--nprocs", type=int, default=16,
                        help="must be a perfect square for the NAS kernels")
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--clusters", type=int, default=4)
    parser.add_argument("--fail-cluster", type=int, default=1,
                        help="index of the cluster whose members all fail")
    args = parser.parse_args()

    workload = WorkloadSpec(
        kind=args.benchmark.lower(), nprocs=args.nprocs, iterations=args.iterations
    )

    # Cluster from the analytic communication graph, so the example can pick
    # a whole cluster as the failure victim and report the expected trade-off.
    graph = CommunicationGraph.from_application(build_application(workload))
    clustering = partition(graph, args.clusters, method="auto", balance_tolerance=1.1)
    metrics = evaluate_clustering(graph, clustering.clusters)
    print(f"benchmark {args.benchmark.upper()} on {args.nprocs} ranks, "
          f"{args.clusters} clusters ({clustering.method})")
    print(f"  expected rollback for one failure : {100 * metrics.rollback_fraction:.1f}%")
    print(f"  volume to log (inter-cluster)     : {100 * metrics.logged_fraction:.1f}%")

    # Fail every rank of one cluster simultaneously (multiple concurrent
    # failures in the same cluster).
    victims = clustering.clusters[args.fail_cluster % len(clustering.clusters)]
    specs = [
        ScenarioSpec(name="nas-containment:reference", workload=workload),
        ScenarioSpec(
            name="nas-containment:hydee",
            workload=workload,
            protocol=ProtocolSpec(
                name="hydee",
                options={"checkpoint_interval": 2,
                         "checkpoint_size_bytes": 1024 * 1024},
                clustering=ClusteringSpec(
                    method="explicit",
                    clusters=tuple(tuple(c) for c in clustering.clusters),
                ),
            ),
            failures=(FailureSpec(ranks=tuple(victims), at_iteration=4),),
        ),
    ]
    outcome = run_campaign(specs, keep_artifacts=True)
    reference, recovered = outcome.artifacts

    print(f"  failed ranks                      : {sorted(victims)}")
    print(f"  ranks rolled back                 : {recovered.stats.ranks_rolled_back} "
          f"({100 * recovered.stats.rolled_back_fraction:.1f}%)")
    print(f"  messages replayed from logs       : "
          f"{recovered.metric('protocol.replayed_messages', 0)}")
    print(f"  orphan messages suppressed        : "
          f"{recovered.metric('protocol.suppressed_orphans', 0)}")
    print(f"  recovery time                     : {recovered.stats.recovery_time * 1e3:.2f} ms")
    print(f"  results identical to reference    : "
          f"{recovered.rank_results == reference.rank_results}")


if __name__ == "__main__":
    main()
