#!/usr/bin/env python3
"""Figure 5 example: NetPIPE-style ping-pong under native MPI and HydEE.

Reproduces the shape of Figure 5 of the paper: HydEE's piggybacked
(date, phase) pair costs a few percent of latency on small messages (with
peaks where the extra bytes push a message onto the next latency plateau of
the MX-like network model), and sender-based payload logging adds nothing
visible because the memcpy overlaps with the transfer.

The three configurations are scenario specs executed as one campaign
(``--workers 3`` runs them in parallel processes).
"""

import argparse

from repro.analysis import analytic_netpipe_experiment, run_netpipe_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-bytes", type=int, default=1 << 20,
                        help="largest message size to sweep (default 1 MiB)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    args = parser.parse_args()

    from repro.simulator.network import netpipe_sizes

    sizes = list(netpipe_sizes(args.max_bytes))
    result = run_netpipe_experiment(sizes=sizes, repeats=args.repeats,
                                    workers=args.workers)
    print(result.as_text())

    # Cross-check the simulated sweep against the closed-form model.
    model = analytic_netpipe_experiment(sizes=sizes)
    worst_sim = min(result.latency_reduction_pct("hydee_logging"))
    worst_model = min(model["latency_reduction_logging_pct"])
    print()
    print(f"worst-case latency degradation: simulated {worst_sim:.1f}%, "
          f"closed-form model {worst_model:.1f}%")
    print("large-message degradation (>= 64 KiB) stays near zero, as in the paper.")


if __name__ == "__main__":
    main()
