#!/usr/bin/env python3
"""Table I example: cluster the six NAS kernels and print the trade-off.

Rebuilds Table I of the paper (number of clusters, expected rollback
fraction, logged volume) from the synthetic NAS communication graphs at 256
processes, and prints the cluster-count frontier for one benchmark to show
the trade-off the clustering tool optimises.

Each Table I row is an analytic campaign scenario; ``--workers 6`` computes
all six in parallel processes.
"""

import argparse

from repro.analysis import build_table1, render_table1
from repro.experiments.ablation_clusters import render as render_sweep
from repro.experiments.ablation_clusters import run as run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=256)
    parser.add_argument("--frontier-benchmark", default="bt")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    args = parser.parse_args()

    rows = build_table1(nprocs=args.nprocs, workers=args.workers)
    print(render_table1(rows))
    print()
    sweep = run_sweep(benchmark=args.frontier_benchmark, nprocs=args.nprocs)
    print(render_sweep(args.frontier_benchmark, sweep))


if __name__ == "__main__":
    main()
