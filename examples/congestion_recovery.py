#!/usr/bin/env python3
"""Recovery under inter-cluster congestion: where containment pays off.

On a flat network (the paper's testbed model) HydEE and coordinated
checkpointing recover in roughly the same time -- the difference is *who*
rolls back, not how long the wires are busy.  This example places the same
stencil on a hierarchical topology (``TopologySpec``) whose inter-cluster
fabric is progressively oversubscribed, aligns HydEE's protocol clusters
with the physical clusters (``ClusteringSpec(method="topology")``), and
shows that

* failure-free time degrades identically for both protocols (same traffic,
  same congested links),
* the *recovery* cost diverges: coordinated checkpointing re-executes every
  rank and pushes the full communication volume through the thin fabric
  again, while HydEE replays only the failed physical cluster from
  sender-based logs,
* the per-tier link statistics make the congestion visible (wait time on
  the ``inter-cluster`` tier).

Every run is a declarative scenario executed through the campaign runner,
so the whole sweep fans out with ``workers=N`` and caches by spec hash.
"""

from repro.analysis.congestion import (
    recovery_divergence,
    render_congestion,
    run_congestion_experiment,
)
from repro.scenarios import TopologySpec, build_topology

NPROCS = 16
RANKS_PER_NODE = 4
OVERSUBSCRIPTIONS = (1.0, 2.0, 4.0, 8.0)


def main() -> None:
    topo_spec = TopologySpec(
        preset="cluster-per-node",
        params={"ranks_per_node": RANKS_PER_NODE, "oversubscription": 4.0},
    )
    topology = build_topology(topo_spec, NPROCS)
    print(f"topology: {topology.describe()}")
    print(f"physical clusters: {topology.ranks_by_cluster()}")
    print()

    rows = run_congestion_experiment(
        nprocs=NPROCS,
        iterations=6,
        oversubscriptions=OVERSUBSCRIPTIONS,
        ranks_per_node=RANKS_PER_NODE,
        workers=2,
    )
    print(render_congestion(rows))
    print()

    divergence = recovery_divergence(rows)
    print("recovery growth from oversubscription "
          f"{min(OVERSUBSCRIPTIONS):g} to {max(OVERSUBSCRIPTIONS):g}:")
    for protocol, factor in sorted(divergence.items()):
        print(f"  {protocol:12s} x{factor:.2f}")
    assert divergence["coordinated"] > divergence["hydee"], (
        "expected coordinated checkpointing to suffer more from congestion"
    )
    print()
    print("containment confined the congested replay to the failed cluster.")


if __name__ == "__main__":
    main()
