#!/usr/bin/env python3
"""Monte Carlo fault campaigns: draw failures instead of hand-writing them.

The script

1. declares a :class:`FaultModelSpec` -- a seeded exponential per-node
   failure process with *node-level* spatial correlation (every drawn
   failure takes down a whole physical node of the scenario's topology),
2. shows the replayable :class:`FailureTrace` the model draws ahead of
   simulation (and its JSON round trip -- the trace can be archived and
   replayed verbatim with ``distribution="trace"``),
3. fans 10 seeded replicas of the scenario through the campaign runner
   (each replica re-draws the trace under its own ``replica`` index) and
4. prints the ``faults.*`` aggregate: mean/stddev/95%-CI makespan,
   failures injected and ranks rolled back across the replicas.
"""

from repro.faults import FailureTrace, FaultModelSpec, generate_trace
from repro.faults.montecarlo import run_montecarlo
from repro.scenarios import (
    ClusteringSpec,
    NetworkSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_topology,
)

NPROCS = 16
ITERATIONS = 6
REPLICAS = 10


def main() -> None:
    # Four ranks per node, one physical cluster per node; HydEE's protocol
    # clusters are aligned with the nodes, so one node failure rolls back
    # exactly one cluster.
    topology = TopologySpec(preset="cluster-per-node", params={"ranks_per_node": 4})
    fault_model = FaultModelSpec(
        distribution="exponential",
        params={"mtbf_s": 8e-3},
        scope="node",          # a strike kills the whole node (4 ranks)
        horizon_s=2e-3,
        seed=42,
    )
    spec = ScenarioSpec(
        name="montecarlo:hydee",
        workload=WorkloadSpec(kind="stencil2d", nprocs=NPROCS, iterations=ITERATIONS),
        protocol=ProtocolSpec(
            name="hydee",
            options={"checkpoint_interval": 1, "checkpoint_size_bytes": 64 * 1024},
            clustering=ClusteringSpec(method="topology"),
        ),
        network=NetworkSpec(topology=topology),
        fault_model=fault_model,
        config={"raise_on_incomplete": False},
    )

    # The trace is drawn ahead of simulation, purely from spec content.
    trace = generate_trace(
        fault_model, NPROCS, build_topology(topology, NPROCS)
    )
    print(f"replica 0 draws {len(trace)} node failure(s):")
    for entry in trace:
        print(f"  t={entry.time * 1e3:8.4f} ms  {entry.unit:8s} ranks {list(entry.ranks)}")
    restored = FailureTrace.from_json(trace.to_json())
    print(f"trace JSON round-trip identical: {restored == trace}")

    result = run_montecarlo(spec, replicas=REPLICAS)
    print()
    print(f"{result.completed_replicas}/{result.replicas} replicas completed; "
          "aggregate over completed replicas:")
    for path in ("sim.makespan", "sim.failures_injected", "sim.ranks_rolled_back"):
        mean = result.metric(f"faults.{path}.mean")
        std = result.metric(f"faults.{path}.std")
        ci95 = result.metric(f"faults.{path}.ci95")
        print(f"  {path:24s} mean={mean:.6g}  std={std:.3g}  ci95=±{ci95:.3g}")


if __name__ == "__main__":
    main()
