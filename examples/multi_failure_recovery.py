#!/usr/bin/env python3
"""Multiple concurrent failures: two clusters fail at the same instant.

The paper proves (Section IV) that HydEE tolerates multiple concurrent
failures without any event logging.  This example declares one reference
scenario plus two failure scenarios (HydEE and global coordinated
checkpointing) that fail one rank in each of two different clusters
simultaneously, runs them as a single campaign, and checks that

* exactly the two affected clusters roll back under HydEE,
* logged inter-cluster messages are replayed to both clusters,
* the recovered execution matches the failure-free reference,
* the same scenario under global coordinated checkpointing rolls back every
  process (the containment HydEE avoids).
"""

from repro.campaign import run_campaign
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

NPROCS = 16
ITERATIONS = 8

#: Four clusters of four ranks (one process-grid row each); the
#: communication-graph partitioner (ClusteringSpec(method="partition")) is
#: demonstrated in examples/clustering_analysis.py.
CLUSTERS = ((0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (12, 13, 14, 15))


def main() -> None:
    workload = WorkloadSpec(kind="stencil2d", nprocs=NPROCS, iterations=ITERATIONS)
    print(f"clusters: {[list(c) for c in CLUSTERS]}")

    # Pick one victim in two different clusters.
    victims = (CLUSTERS[0][0], CLUSTERS[-1][-1])
    print(f"concurrent failures injected on ranks {list(victims)}")
    failure = FailureSpec(ranks=victims, at_iteration=5)
    checkpointing = {"checkpoint_interval": 2, "checkpoint_size_bytes": 256 * 1024}

    specs = [
        ScenarioSpec(name="multi-failure:reference", workload=workload),
        ScenarioSpec(
            name="multi-failure:hydee",
            workload=workload,
            protocol=ProtocolSpec(
                name="hydee",
                options=checkpointing,
                clustering=ClusteringSpec(method="explicit", clusters=CLUSTERS),
            ),
            failures=(failure,),
        ),
        ScenarioSpec(
            name="multi-failure:coordinated",
            workload=workload,
            protocol=ProtocolSpec(name="coordinated", options=checkpointing),
            failures=(failure,),
        ),
    ]
    outcome = run_campaign(specs, keep_artifacts=True)
    reference, hydee, coordinated = outcome.artifacts

    replayed = hydee.metric("protocol.replayed_messages", 0)
    print(
        f"HydEE        : {hydee.stats.ranks_rolled_back}/{NPROCS} ranks rolled back, "
        f"{replayed} messages replayed, "
        f"results identical = {hydee.rank_results == reference.rank_results}"
    )
    print(
        f"coordinated  : {coordinated.stats.ranks_rolled_back}/{NPROCS} ranks rolled back, "
        f"results identical = {coordinated.rank_results == reference.rank_results}"
    )


if __name__ == "__main__":
    main()
