#!/usr/bin/env python3
"""Multiple concurrent failures: two clusters fail at the same instant.

The paper proves (Section IV) that HydEE tolerates multiple concurrent
failures without any event logging.  This example fails one rank in each of
two different clusters simultaneously, and checks that

* exactly the two affected clusters roll back,
* logged inter-cluster messages are replayed to both clusters,
* the recovered execution matches the failure-free reference,
* the same scenario under global coordinated checkpointing rolls back every
  process (the containment HydEE avoids).
"""

from repro import (
    CoordinatedCheckpointProtocol,
    HydEEConfig,
    HydEEProtocol,
    Simulation,
)
from repro.clustering import cluster_application
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.workloads import Stencil2DApplication

NPROCS = 16
ITERATIONS = 8


def make_app() -> Stencil2DApplication:
    return Stencil2DApplication(nprocs=NPROCS, iterations=ITERATIONS)


def main() -> None:
    reference = Simulation(make_app(), nprocs=NPROCS).run()
    # Four clusters of four ranks (one process-grid row each); the
    # communication-graph partitioner (`cluster_application`) is demonstrated
    # in examples/clustering_analysis.py.
    clusters = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]
    _ = cluster_application
    print(f"clusters: {clusters}")

    # Pick one victim in two different clusters.
    victims = [clusters[0][0], clusters[-1][-1]]
    print(f"concurrent failures injected on ranks {victims}")

    protocol = HydEEProtocol(
        HydEEConfig(clusters=clusters, checkpoint_interval=2, checkpoint_size_bytes=256 * 1024)
    )
    result = Simulation(
        make_app(),
        nprocs=NPROCS,
        protocol=protocol,
        failures=FailureInjector([FailureEvent(ranks=victims, at_iteration=5)]),
    ).run()
    print(
        f"HydEE        : {result.stats.ranks_rolled_back}/{NPROCS} ranks rolled back, "
        f"{protocol.pstats.replayed_messages} messages replayed, "
        f"results identical = {result.rank_results == reference.rank_results}"
    )

    coordinated = CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                checkpoint_size_bytes=256 * 1024)
    coord_result = Simulation(
        make_app(),
        nprocs=NPROCS,
        protocol=coordinated,
        failures=FailureInjector([FailureEvent(ranks=victims, at_iteration=5)]),
    ).run()
    print(
        f"coordinated  : {coord_result.stats.ranks_rolled_back}/{NPROCS} ranks rolled back, "
        f"results identical = {coord_result.rank_results == reference.rank_results}"
    )


if __name__ == "__main__":
    main()
