"""Shim so that legacy tooling (``pip install -e . --no-use-pep517``,
``python setup.py develop``) works in environments without PEP 660 support;
all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
