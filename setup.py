"""Packaging for the HydEE reproduction (see README.md).

Optional compiled event core
----------------------------
``REPRO_MYPYC=1 python setup.py build_ext --inplace`` compiles the
simulator's hot event loop with mypyc.  The build copies
``repro/simulator/_engine_core.py`` verbatim to
``_engine_core_compiled.py`` and compiles *the copy*, so the pure-Python
module stays importable as-is and ``REPRO_COMPILED=0`` can always select
it at run time (see ``repro.simulator.engine``).  Without ``REPRO_MYPYC``
-- or when mypyc is not installed -- the build is pure Python and nothing
changes.
"""

import os
import shutil

from setuptools import find_packages, setup


def _compiled_engine_ext_modules():
    if os.environ.get("REPRO_MYPYC") != "1":
        return []
    try:
        from mypyc.build import mypycify
    except ImportError:
        print("REPRO_MYPYC=1 but mypyc is not installed; building pure Python")
        return []
    here = os.path.dirname(os.path.abspath(__file__))
    core = os.path.join(here, "src", "repro", "simulator", "_engine_core.py")
    copy = os.path.join(here, "src", "repro", "simulator", "_engine_core_compiled.py")
    shutil.copyfile(core, copy)
    return mypycify([copy])


setup(
    name="hydee-repro",
    version="1.0.0",
    description=(
        "Discrete-event reproduction of HydEE: failure containment without "
        "event logging for send-deterministic MPI applications (IPDPS 2012)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="hydee-repro contributors",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    ext_modules=_compiled_engine_ext_modules(),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6", "pytest-benchmark>=4"],
    },
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.campaign.cli:main",
            "repro-experiment=repro.experiments.cli:main",
            "repro-lint=repro.lint.cli:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
