"""Packaging for the HydEE reproduction (see README.md)."""

from setuptools import find_packages, setup

setup(
    name="hydee-repro",
    version="1.0.0",
    description=(
        "Discrete-event reproduction of HydEE: failure containment without "
        "event logging for send-deterministic MPI applications (IPDPS 2012)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="hydee-repro contributors",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6", "pytest-benchmark>=4"],
    },
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.campaign.cli:main",
            "repro-experiment=repro.experiments.cli:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
