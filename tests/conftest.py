"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.config import HydEEConfig
from repro.core.protocol import HydEEProtocol
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.simulation import Simulation
from repro.workloads.ring import RingApplication
from repro.workloads.stencil import Stencil2DApplication


def run_simulation(app, nprocs, protocol=None, failures=None, config=None):
    """Build and run a simulation, returning (result, simulation)."""
    sim = Simulation(app, nprocs=nprocs, protocol=protocol, failures=failures, config=config)
    result = sim.run()
    return result, sim


@pytest.fixture
def four_clusters_16():
    """Four clusters of four ranks (a 4x4 process grid split by rows)."""
    return [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]


@pytest.fixture
def stencil16():
    """A 16-rank 2-D stencil workload factory."""

    def make(iterations: int = 6):
        return Stencil2DApplication(nprocs=16, iterations=iterations)

    return make


@pytest.fixture
def ring8():
    """An 8-rank ring workload factory."""

    def make(iterations: int = 5):
        return RingApplication(nprocs=8, iterations=iterations)

    return make


@pytest.fixture
def hydee16(four_clusters_16):
    """HydEE protocol factory for the 16-rank stencil."""

    def make(checkpoint_interval: int = 2, **kwargs):
        config = HydEEConfig(
            clusters=four_clusters_16,
            checkpoint_interval=checkpoint_interval,
            checkpoint_size_bytes=64 * 1024,
            **kwargs,
        )
        return HydEEProtocol(config)

    return make


@pytest.fixture
def single_failure():
    """Failure injector factory: given ranks and iteration, build an injector."""

    def make(ranks, at_iteration=None, time=None):
        return FailureInjector([FailureEvent(ranks=list(ranks), at_iteration=at_iteration,
                                             time=time)])

    return make
