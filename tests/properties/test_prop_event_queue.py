"""Property tests (hypothesis) for the two-tier event queue.

The engine's contract is simple to state -- events execute in ``(time,
seq)`` order, whatever mixture of drain-list consumption, overflow-heap
merges, generation swaps, cancellations and lazy compactions produced the
queue state -- but the implementation is aggressively specialised, so the
properties drive it with randomized *programs*: events whose callbacks
schedule further events (including zero-delay ties that join the group
being drained) and cancel pending ones.  A naive single-list reference
executes the same program; the logs must match exactly.

The FIFO schedule-policy path (``set_schedule_policy`` with a chooser that
always picks index 0) must reproduce the default order bit for bit -- that
equivalence is what lets the schedule explorer trust its baseline run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import SimulationEngine

#: Delay pool: few distinct values so equal-time groups are common; 0.0
#: makes callback-scheduled events tie with the group currently draining.
_DELAYS = (0.0, 0.25, 0.5, 1.0)


class _CompactingEngine(SimulationEngine):
    """Engine variant that compacts on (nearly) every cancellation."""

    COMPACT_MIN_CANCELLED = 1


@st.composite
def queue_programs(draw):
    """A program over event specs ``0..n-1``.

    Returns ``(n_specs, roots, delays, actions)``: specs in ``roots`` are
    scheduled up front; executing spec ``i`` performs ``actions[i]``, each
    either ``("sched", j, delay)`` (schedule spec ``j`` unless already
    scheduled) or ``("cancel", j)`` (cancel ``j`` if still pending).  Only
    ``j > i`` targets are generated for scheduling, so every program
    terminates; each spec runs at most once.
    """
    n_specs = draw(st.integers(min_value=1, max_value=12))
    roots = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_specs - 1),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    delays = [draw(st.sampled_from(_DELAYS)) for _ in range(n_specs)]
    actions = []
    for i in range(n_specs):
        spec_actions = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            if i + 1 < n_specs and draw(st.booleans()):
                j = draw(st.integers(min_value=i + 1, max_value=n_specs - 1))
                spec_actions.append(("sched", j, draw(st.sampled_from(_DELAYS))))
            else:
                j = draw(st.integers(min_value=0, max_value=n_specs - 1))
                spec_actions.append(("cancel", j))
        actions.append(spec_actions)
    return n_specs, roots, delays, actions


def _run_engine(program, engine=None, chooser=None):
    """Execute the program on a real engine; returns the execution log."""
    n_specs, roots, delays, actions = program
    engine = engine if engine is not None else SimulationEngine()
    if chooser is not None:
        engine.set_schedule_policy(chooser)
    handles = {}
    log = []

    def execute(spec):
        log.append(spec)
        for action in actions[spec]:
            if action[0] == "sched":
                _, j, delay = action
                if j not in handles:
                    handles[j] = engine.schedule(delay, execute, j)
            else:
                handle = handles.get(action[1])
                if handle is not None:
                    handle.cancel()
    for spec in roots:
        handles[spec] = engine.schedule(delays[spec], execute, spec)
    outcome = engine.run()
    assert outcome == "empty"
    assert engine.pending_events == 0
    assert engine.events_processed == len(log)
    return log


def _run_reference(program):
    """Same program on a naive sorted-list queue: the ground truth order."""
    n_specs, roots, delays, actions = program
    now = 0.0
    seq = 0
    pending = {}  # spec -> [time, seq, alive]
    log = []
    for spec in roots:
        seq += 1
        pending[spec] = [delays[spec], seq, True]
    while True:
        live = [(e[0], e[1], s) for s, e in pending.items() if e[2]]
        if not live:
            return log
        _, _, spec = min(live)
        entry = pending[spec]
        now = entry[0]
        entry[2] = False
        log.append(spec)
        for action in actions[spec]:
            if action[0] == "sched":
                _, j, delay = action
                if j not in pending:
                    seq += 1
                    pending[j] = [now + delay, seq, True]
            else:
                target = pending.get(action[1])
                if target is not None:
                    target[2] = False


@given(queue_programs())
@settings(max_examples=200, deadline=None)
def test_execution_order_matches_naive_reference(program):
    assert _run_engine(program) == _run_reference(program)


@given(queue_programs())
@settings(max_examples=100, deadline=None)
def test_aggressive_compaction_does_not_reorder(program):
    assert _run_engine(program, engine=_CompactingEngine()) == _run_reference(program)


@given(queue_programs())
@settings(max_examples=100, deadline=None)
def test_fifo_policy_reproduces_default_order(program):
    # The policy loop (group pop + same-time absorption across both tiers)
    # with the always-first chooser is the explorer's baseline: it must be
    # indistinguishable from the policy-free hot path.
    assert _run_engine(program, chooser=lambda time, group: 0) == _run_reference(
        program
    )


@given(queue_programs())
@settings(max_examples=100, deadline=None)
def test_equal_time_groups_preserve_schedule_order(program):
    # Within one timestamp the execution order is exactly the scheduling
    # order (FIFO), even when a group spans the drain list and the overflow
    # heap or is joined mid-drain by zero-delay events.
    n_specs, roots, delays, actions = program
    engine = SimulationEngine()
    handles = {}
    log = []
    schedule_order = {}

    def execute(spec):
        log.append((engine.now, schedule_order[spec], spec))
        for action in actions[spec]:
            if action[0] == "sched":
                _, j, delay = action
                if j not in handles:
                    schedule_order[j] = len(schedule_order)
                    handles[j] = engine.schedule(delay, execute, j)
            else:
                handle = handles.get(action[1])
                if handle is not None:
                    handle.cancel()
    for spec in roots:
        schedule_order[spec] = len(schedule_order)
        handles[spec] = engine.schedule(delays[spec], execute, spec)
    engine.run()
    for earlier, later in zip(log, log[1:]):
        assert earlier[0] <= later[0]
        if earlier[0] == later[0]:
            assert earlier[1] < later[1]
