"""Property-based tests for the clustering substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering import (
    CommunicationGraph,
    block_partition,
    evaluate_clustering,
    greedy_agglomerative,
    partition,
    refine,
    rollback_fraction,
)


@st.composite
def volume_matrices(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    matrix = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n, n),
            elements=st.floats(min_value=0.0, max_value=1000.0),
        )
    )
    np.fill_diagonal(matrix, 0.0)
    return matrix


@given(volume_matrices(), st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_partition_is_always_a_valid_partition(matrix, k):
    n = matrix.shape[0]
    k = min(k, n)
    result = partition(matrix, k, method="auto")
    ranks = sorted(r for cluster in result.clusters for r in cluster)
    assert ranks == list(range(n))
    assert result.metrics.num_clusters == len(result.clusters)
    # Allow for float-summation rounding in the ratio.
    assert 0.0 <= result.metrics.logged_fraction <= 1.0 + 1e-9
    assert 1.0 / n <= result.metrics.rollback_fraction <= 1.0


@given(volume_matrices(), st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_greedy_produces_requested_cluster_count(matrix, k):
    n = matrix.shape[0]
    k = min(k, n)
    clusters = greedy_agglomerative(matrix, k)
    assert len(clusters) == k
    assert sorted(r for c in clusters for r in c) == list(range(n))


@given(volume_matrices())
@settings(max_examples=40, deadline=None)
def test_refine_never_increases_cut(matrix):
    n = matrix.shape[0]
    k = max(2, n // 3)
    graph = CommunicationGraph.from_matrix(matrix)
    initial = block_partition(n, k)
    refined = refine(graph, initial)
    assert graph.cut_bytes(refined) <= graph.cut_bytes(initial) + 1e-9
    assert sorted(r for c in refined for r in c) == list(range(n))


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=64))
def test_block_partition_sizes_are_balanced(n, k):
    k = min(k, n)
    clusters = block_partition(n, k)
    sizes = [len(c) for c in clusters]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    assert rollback_fraction(sizes, n) <= 1.0


@given(volume_matrices())
@settings(max_examples=40, deadline=None)
def test_cut_bytes_plus_internal_equals_total(matrix):
    n = matrix.shape[0]
    graph = CommunicationGraph.from_matrix(matrix)
    k = max(2, n // 2)
    clusters = block_partition(n, k)
    metrics = evaluate_clustering(graph, clusters)
    internal = graph.total_bytes - metrics.logged_bytes
    assert internal >= -1e-9
    assert metrics.logged_bytes <= graph.total_bytes + 1e-9
    # Single cluster logs nothing; singleton clusters log everything (up to
    # float-summation rounding).
    assert evaluate_clustering(graph, [list(range(n))]).logged_bytes == 0.0
    singleton = evaluate_clustering(graph, [[r] for r in range(n)])
    assert abs(singleton.logged_bytes - graph.total_bytes) <= 1e-6 * max(1.0, graph.total_bytes)
