"""Property-based end-to-end tests: HydEE recovery over randomized scenarios.

Hypothesis drives the failure scenario (which rank fails, when, with which
checkpoint interval and clustering) on small deterministic workloads; the
properties are the paper's theorems: the recovered execution terminates, only
the failed clusters roll back, and the results equal the failure-free
reference.
"""

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HydEEConfig, HydEEProtocol, Simulation
from repro.core.invariants import (
    check_containment,
    check_recovery_equivalence,
    check_send_determinism,
)
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.trace import compare_send_sequences
from repro.workloads import RingApplication, Stencil2DApplication

NPROCS = 8
ITERATIONS = 6
CLUSTERINGS = [
    [[0, 1, 2, 3], [4, 5, 6, 7]],
    [[0, 1], [2, 3], [4, 5], [6, 7]],
    [[0, 1, 2], [3, 4], [5, 6, 7]],
]


def _make_app(kind: str):
    if kind == "ring":
        return RingApplication(nprocs=NPROCS, iterations=ITERATIONS)
    return Stencil2DApplication(nprocs=NPROCS, iterations=ITERATIONS)


@lru_cache(maxsize=None)
def _reference(kind: str):
    return Simulation(_make_app(kind), nprocs=NPROCS).run()


@given(
    kind=st.sampled_from(["ring", "stencil"]),
    failed_rank=st.integers(min_value=0, max_value=NPROCS - 1),
    fail_iteration=st.integers(min_value=1, max_value=ITERATIONS),
    checkpoint_interval=st.integers(min_value=1, max_value=4),
    clustering_index=st.integers(min_value=0, max_value=len(CLUSTERINGS) - 1),
)
@settings(max_examples=25, deadline=None)
def test_single_random_failure_recovers_correctly(
    kind, failed_rank, fail_iteration, checkpoint_interval, clustering_index
):
    clusters = CLUSTERINGS[clustering_index]
    reference = _reference(kind)
    protocol = HydEEProtocol(
        HydEEConfig(
            clusters=clusters,
            checkpoint_interval=checkpoint_interval,
            checkpoint_size_bytes=8 * 1024,
        )
    )
    injector = FailureInjector(
        [FailureEvent(ranks=[failed_rank], at_iteration=fail_iteration)]
    )
    result = Simulation(
        _make_app(kind), nprocs=NPROCS, protocol=protocol, failures=injector
    ).run()

    check_recovery_equivalence(reference, result)
    check_containment(result, protocol, [failed_rank])
    check_send_determinism(reference.trace, result.trace)
    # No determinant was ever logged (the paper's headline property).
    assert protocol.pstats.determinants_logged == 0


@given(
    victims=st.sets(st.integers(min_value=0, max_value=NPROCS - 1), min_size=2, max_size=3),
    fail_iteration=st.integers(min_value=2, max_value=ITERATIONS - 1),
    clustering_index=st.integers(min_value=0, max_value=len(CLUSTERINGS) - 1),
)
@settings(max_examples=15, deadline=None)
def test_concurrent_random_failures_recover_correctly(
    victims, fail_iteration, clustering_index
):
    clusters = CLUSTERINGS[clustering_index]
    reference = _reference("stencil")
    protocol = HydEEProtocol(
        HydEEConfig(clusters=clusters, checkpoint_interval=2, checkpoint_size_bytes=8 * 1024)
    )
    injector = FailureInjector(
        [FailureEvent(ranks=sorted(victims), at_iteration=fail_iteration)]
    )
    result = Simulation(
        _make_app("stencil"), nprocs=NPROCS, protocol=protocol, failures=injector
    ).run()

    check_recovery_equivalence(reference, result)
    check_containment(result, protocol, sorted(victims))
    assert not compare_send_sequences(reference.trace, result.trace)


@given(
    checkpoint_interval=st.integers(min_value=1, max_value=5),
    clustering_index=st.integers(min_value=0, max_value=len(CLUSTERINGS) - 1),
)
@settings(max_examples=10, deadline=None)
def test_failure_free_runs_are_reference_equivalent_for_any_configuration(
    checkpoint_interval, clustering_index
):
    reference = _reference("stencil")
    protocol = HydEEProtocol(
        HydEEConfig(
            clusters=CLUSTERINGS[clustering_index],
            checkpoint_interval=checkpoint_interval,
            checkpoint_size_bytes=8 * 1024,
        )
    )
    result = Simulation(_make_app("stencil"), nprocs=NPROCS, protocol=protocol).run()
    assert result.rank_results == reference.rank_results
    assert not compare_send_sequences(reference.trace, result.trace)
