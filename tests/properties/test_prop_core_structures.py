"""Property-based tests (hypothesis) for HydEE's core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message_log import SenderLog
from repro.core.phase import INITIAL_PHASE, PhaseClock
from repro.core.rpp import RPPTable
from repro.simulator.engine import SimulationEngine
from repro.simulator.messages import Message


# --------------------------------------------------------------------- clock
@st.composite
def clock_events(draw):
    """A random sequence of send / intra-delivery / inter-delivery events."""
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["send", "intra", "inter"]),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=60,
        )
    )
    return events


@given(clock_events())
def test_phase_never_decreases_and_date_counts_events(events):
    clock = PhaseClock()
    previous_phase = clock.phase
    for kind, message_phase in events:
        if kind == "send":
            clock.on_send()
        elif kind == "intra":
            clock.on_deliver_intra(message_phase)
        else:
            clock.on_deliver_inter(message_phase)
        assert clock.phase >= previous_phase           # Lemma 1 on process order
        assert clock.phase >= INITIAL_PHASE
        previous_phase = clock.phase
    assert clock.date == len(events)                   # date == event count


@given(clock_events())
def test_inter_delivery_strictly_exceeds_message_phase(events):
    clock = PhaseClock()
    for kind, message_phase in events:
        if kind == "send":
            clock.on_send()
        elif kind == "intra":
            clock.on_deliver_intra(message_phase)
            assert clock.phase >= message_phase
        else:
            clock.on_deliver_inter(message_phase)
            assert clock.phase > message_phase          # Lemma 3 ingredient

@given(clock_events())
def test_clock_snapshot_roundtrip_preserves_state(events):
    clock = PhaseClock()
    for kind, message_phase in events:
        if kind == "send":
            clock.on_send()
        elif kind == "intra":
            clock.on_deliver_intra(message_phase)
        else:
            clock.on_deliver_inter(message_phase)
    restored = PhaseClock.from_snapshot(clock.snapshot())
    assert (restored.date, restored.phase) == (clock.date, clock.phase)


# ----------------------------------------------------------------------- RPP
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),      # sender
            st.integers(min_value=1, max_value=200),    # send date
            st.integers(min_value=1, max_value=50),     # phase
        ),
        max_size=80,
    ),
    st.integers(min_value=0, max_value=200),
)
def test_rpp_orphans_are_exactly_entries_after_restart_date(observations, restart_date):
    rpp = RPPTable()
    per_sender = {}
    for sender, date, phase in observations:
        rpp.observe(sender, date, phase)
        per_sender.setdefault(sender, {})[date] = phase
    for sender, seen in per_sender.items():
        expected = sorted((d, p) for d, p in seen.items() if d > restart_date)
        assert rpp.orphan_entries(sender, restart_date) == expected
        assert rpp.max_date(sender) == max(seen)
    # Snapshot round trip preserves every channel.
    restored = RPPTable.from_snapshot(rpp.snapshot())
    for sender, seen in per_sender.items():
        assert restored.max_date(sender) == max(seen)


# ----------------------------------------------------------------- sender log
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),       # dest
            st.integers(min_value=1, max_value=100),     # date
            st.integers(min_value=1, max_value=10),      # phase
            st.integers(min_value=1, max_value=4096),    # size
        ),
        max_size=60,
    ),
    st.integers(min_value=0, max_value=100),
)
def test_sender_log_replay_selection_and_gc(entries, after_date):
    log = SenderLog()
    for dest, date, phase, size in entries:
        log.add(dest, date, phase, Message(source=9, dest=dest, tag=0, size_bytes=size))
    total_bytes = sum(size for _, _, _, size in entries)
    assert log.current_bytes == total_bytes
    for dest in {d for d, _, _, _ in entries}:
        selected = log.entries_for(dest, after_date)
        dates = [e.date for e in selected]
        assert dates == sorted(dates)
        assert all(e.dest == dest and e.date > after_date for e in selected)
    # Garbage collection never reclaims more than what was stored and keeps
    # the log consistent.
    freed = sum(log.purge_acknowledged(dest, up_to_date=50) for dest in range(5))
    assert 0 <= freed <= total_bytes
    assert log.current_bytes == total_bytes - freed
    assert all(e.date > 50 for e in log.entries)


# -------------------------------------------------------------------- engine
@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40))
@settings(max_examples=50)
def test_engine_executes_events_in_nondecreasing_time_order(delays):
    engine = SimulationEngine()
    executed = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: executed.append(engine.now))
    engine.run()
    assert len(executed) == len(delays)
    assert executed == sorted(executed)
    assert engine.now == max(executed)
