"""Integration tests for the campaign runner: serial vs parallel equivalence,
result-store caching, artifacts, analysis jobs and the CLI."""

import json

import pytest

from repro.campaign import ResultsStore, run_campaign, run_spec
from repro.campaign.cli import main as campaign_main
from repro.results import RunResult
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    sweep,
)


def sweep_specs():
    """A small 8-spec grid (2 workloads x 2 sizes x 2 protocols)."""
    base = ScenarioSpec(
        name="grid", workload=WorkloadSpec(kind="stencil2d", nprocs=8, iterations=3)
    )
    return sweep(
        base,
        {
            "workload.kind": ["stencil2d", "ring"],
            "workload.nprocs": [4, 8],
            "protocol.name": ["none", "hydee-log-all"],
        },
    )


def canonical(records):
    return json.dumps(records, sort_keys=True, separators=(",", ":"))


class TestSerialParallelEquivalence:
    def test_parallel_records_byte_identical_to_serial(self):
        specs = sweep_specs()
        assert len(specs) >= 8
        serial = run_campaign(specs, workers=1)
        parallel = run_campaign(specs, workers=2)
        assert serial.executed == len(specs)
        assert parallel.executed == len(specs)
        assert canonical(serial.records) == canonical(parallel.records)

    def test_parallel_store_file_byte_identical_to_serial(self, tmp_path):
        specs = sweep_specs()
        serial_store = ResultsStore(str(tmp_path / "serial.json"))
        parallel_store = ResultsStore(str(tmp_path / "parallel.json"))
        run_campaign(specs, workers=1, store=serial_store)
        run_campaign(specs, workers=2, store=parallel_store)
        serial_bytes = (tmp_path / "serial.json").read_bytes()
        parallel_bytes = (tmp_path / "parallel.json").read_bytes()
        assert serial_bytes == parallel_bytes

    def test_records_follow_input_order(self):
        specs = sweep_specs()
        outcome = run_campaign(specs, workers=2)
        assert [r["name"] for r in outcome.records] == [s.name for s in specs]


class TestResultCaching:
    def test_cache_hit_skips_execution(self, tmp_path):
        specs = sweep_specs()
        store = ResultsStore(str(tmp_path / "store.json"))
        first = run_campaign(specs, store=store)
        assert first.executed == len(specs) and first.cache_hits == 0

        # Reload from disk: everything must come from the cache.
        reloaded = ResultsStore(str(tmp_path / "store.json"))
        second = run_campaign(specs, store=reloaded, workers=2)
        assert second.executed == 0 and second.cache_hits == len(specs)
        assert canonical(first.records) == canonical(second.records)

    def test_cached_record_is_returned_verbatim(self, tmp_path):
        # Plant a sentinel record: if the campaign returns it, it provably
        # skipped re-execution.
        spec = sweep_specs()[0]
        store = ResultsStore(str(tmp_path / "store.json"))
        sentinel = {
            "name": spec.name,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "analysis": "simulate",
            "result": {"status": "sentinel"},
        }
        store.put(spec.spec_hash(), sentinel)
        outcome = run_campaign([spec], store=store)
        assert outcome.records[0]["result"]["status"] == "sentinel"
        assert outcome.executed == 0

    def test_force_reexecutes_despite_cache(self, tmp_path):
        spec = sweep_specs()[0]
        store = ResultsStore(str(tmp_path / "store.json"))
        run_campaign([spec], store=store)
        forced = run_campaign([spec], store=store, force=True)
        assert forced.executed == 1 and forced.cache_hits == 0

    def test_partial_cache_executes_only_missing(self, tmp_path):
        specs = sweep_specs()
        store = ResultsStore(str(tmp_path / "store.json"))
        run_campaign(specs[:3], store=store)
        outcome = run_campaign(specs, store=store, workers=2)
        assert outcome.cache_hits == 3
        assert outcome.executed == len(specs) - 3


class TestArtifactsAndJobs:
    def test_keep_artifacts_returns_live_results(self):
        specs = sweep_specs()[:2]
        outcome = run_campaign(specs, keep_artifacts=True)
        for artifact, run in zip(outcome.artifacts, outcome.results()):
            assert artifact is not None
            assert artifact.completed
            assert artifact.makespan == run.metric("sim.makespan")

    def test_failure_scenarios_record_recovery(self):
        spec = ScenarioSpec(
            name="campaign:failure",
            workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=6),
            protocol=ProtocolSpec(
                name="hydee",
                options={"checkpoint_interval": 2, "checkpoint_size_bytes": 65536},
                clustering=ClusteringSpec(method="block", num_clusters=4),
            ),
            failures=(FailureSpec(ranks=(5,), at_iteration=4),),
        )
        record, _ = run_spec(spec)
        run = RunResult.from_record(record)
        assert run.status == "completed"
        assert run.metric("sim.failures_injected") == 1
        assert run.metric("sim.ranks_rolled_back") == 4

    def test_analytic_jobs_run_through_campaign(self):
        from repro.analysis.table1 import cluster_sweep_spec, table1_spec

        outcome = run_campaign(
            [table1_spec("cg", nprocs=64),
             cluster_sweep_spec("bt", nprocs=64, counts=(2, 4))],
            workers=2,
        )
        table1_run, sweep_run = outcome.results()
        assert table1_run.analysis == "table1-row"
        assert table1_run.data["row"]["benchmark"] == "cg"
        assert table1_run.metric("clustering.num_clusters") == table1_run.data["row"]["num_clusters"]
        assert [row["clusters"] for row in sweep_run.data["rows"]] == [2, 4]

    def test_unknown_analysis_is_rejected(self):
        spec = ScenarioSpec(
            name="bad",
            workload=WorkloadSpec(kind="ring", nprocs=4, iterations=1),
            tags={"analysis": "divination"},
        )
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_spec(spec)


class TestCampaignCli:
    def test_demo_list_run_cycle(self, tmp_path, capsys):
        specfile = tmp_path / "specs.json"
        storefile = tmp_path / "results.json"
        assert campaign_main(["demo", "--out", str(specfile)]) == 0
        assert campaign_main(["list", str(specfile)]) == 0
        assert campaign_main([
            "run", str(specfile), "--workers", "2", "--store", str(storefile)
        ]) == 0
        out = capsys.readouterr().out
        assert "Campaign" in out
        data = json.loads(storefile.read_text())
        assert len(data["records"]) == 8
        # A second run is served from the cache.
        assert campaign_main(["run", str(specfile), "--store", str(storefile)]) == 0
        out = capsys.readouterr().out
        assert "8 cached" in out


# ----------------------------------------------------------- concurrent saves
def _concurrent_put(path: str, index: int, barrier) -> None:
    """Worker body: open the (shared) store, add one record, save.

    The barrier maximises overlap: every worker loads the store *before* any
    of them saves, which is exactly the read-modify-write race that used to
    drop records under last-writer-wins.
    """
    store = ResultsStore(path)
    store.put(f"hash-{index}", {"name": f"rec-{index}", "result": {"status": "ok"}})
    barrier.wait()
    store.save()


class TestConcurrentWriters:
    def test_concurrent_saves_merge_all_records(self, tmp_path):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        path = str(tmp_path / "shared_store.json")
        n_workers = 6
        barrier = ctx.Barrier(n_workers)
        workers = [
            ctx.Process(target=_concurrent_put, args=(path, i, barrier))
            for i in range(n_workers)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        merged = ResultsStore(path)
        assert sorted(merged) == [f"hash-{i}" for i in range(n_workers)]
        for i in range(n_workers):
            assert merged.get(f"hash-{i}")["name"] == f"rec-{i}"

    def test_save_merges_records_written_by_another_process_in_between(self, tmp_path):
        path = str(tmp_path / "store.json")
        first = ResultsStore(path)
        first.put("a", {"name": "a"})
        first.save()
        # Simulate another campaign writing between our load and save.
        mine = ResultsStore(path)
        mine.put("mine", {"name": "mine", "fresh": True})
        other = ResultsStore(path)
        other.put("other", {"name": "other"})
        other.save()
        mine.save()
        merged = ResultsStore(path)
        assert sorted(merged) == ["a", "mine", "other"]
        # Our own record wins on hash collisions.
        collider = ResultsStore(path)
        collider.put("mine", {"name": "mine", "fresh": False})
        collider.save()
        assert ResultsStore(path).get("mine")["fresh"] is False

    def test_clear_then_save_truncates_the_file(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = ResultsStore(path)
        store.put("a", {"name": "a"})
        store.put("b", {"name": "b"})
        store.save()
        store.clear()
        store.save()
        assert len(ResultsStore(path)) == 0
        # Saves after the deliberate truncation merge normally again.
        late = ResultsStore(path)
        late.put("c", {"name": "c"})
        late.save()
        assert sorted(ResultsStore(path)) == ["c"]
