"""Integration tests: failure-free executions under every protocol.

The key property (used to normalise Figures 5 and 6) is that the protocols
are *transparent*: they change timing, never results; HydEE logs only
inter-cluster traffic; the paper's phase lemmas hold on the recorded traces.
"""

import pytest

from repro import (
    CoordinatedCheckpointProtocol,
    FullMessageLoggingProtocol,
    HybridEventLoggingProtocol,
    HydEEConfig,
    HydEEProtocol,
    Simulation,
)
from repro.core.invariants import (
    check_logged_messages_inter_cluster,
    check_message_phase_vs_sender,
    check_orphan_phases,
    check_phase_monotonicity,
)
from repro.workloads import (
    PipelineApplication,
    RingApplication,
    Stencil2DApplication,
    make_nas_application,
)

CLUSTERS16 = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]


def run(app_factory, protocol=None):
    app = app_factory()
    return Simulation(app, nprocs=app.nprocs, protocol=protocol).run()


WORKLOADS = {
    "ring": lambda: RingApplication(nprocs=16, iterations=5),
    "pipeline": lambda: PipelineApplication(nprocs=16, iterations=4),
    "stencil2d": lambda: Stencil2DApplication(nprocs=16, iterations=5),
    "cg": lambda: make_nas_application("cg", nprocs=16, iterations=2, message_scale=0.01),
    "ft": lambda: make_nas_application("ft", nprocs=16, iterations=2, message_scale=0.01),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_hydee_is_transparent_failure_free(workload):
    factory = WORKLOADS[workload]
    reference = run(factory)
    protocol = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16, checkpoint_interval=2,
                                         checkpoint_size_bytes=4096))
    result = run(factory, protocol)
    assert result.completed
    assert result.rank_results == reference.rank_results


@pytest.mark.parametrize(
    "protocol_factory",
    [
        lambda: CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                              checkpoint_size_bytes=4096),
        lambda: FullMessageLoggingProtocol(checkpoint_interval=2,
                                           checkpoint_size_bytes=4096),
        lambda: HybridEventLoggingProtocol(HydEEConfig(clusters=CLUSTERS16,
                                                       checkpoint_interval=2,
                                                       checkpoint_size_bytes=4096)),
    ],
    ids=["coordinated", "message-logging", "hybrid-event-logging"],
)
def test_baselines_are_transparent_failure_free(protocol_factory):
    factory = WORKLOADS["stencil2d"]
    reference = run(factory)
    result = run(factory, protocol_factory())
    assert result.completed
    assert result.rank_results == reference.rank_results


def test_hydee_logs_only_inter_cluster_messages():
    factory = WORKLOADS["stencil2d"]
    protocol = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16))
    result = run(factory, protocol)
    check_logged_messages_inter_cluster(protocol)
    assert 0 < result.stats.logged_messages < result.stats.app_messages
    assert 0.0 < result.stats.logged_fraction_bytes < 1.0


def test_hydee_log_all_logs_everything():
    factory = WORKLOADS["stencil2d"]
    protocol = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16, log_all_messages=True))
    result = run(factory, protocol)
    assert result.stats.logged_messages == result.stats.app_messages


def test_single_cluster_logs_nothing():
    factory = WORKLOADS["ring"]
    protocol = HydEEProtocol(HydEEConfig(clusters=None))
    result = run(factory, protocol)
    assert result.stats.logged_messages == 0


def test_phase_lemmas_hold_on_failure_free_trace():
    factory = WORKLOADS["pipeline"]
    protocol = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16))
    app = factory()
    sim = Simulation(app, nprocs=app.nprocs, protocol=protocol)
    result = sim.run()
    assert result.completed
    assert check_phase_monotonicity(result.trace)["events_checked"] > 0
    assert check_message_phase_vs_sender(result.trace)["sends_checked"] > 0
    assert check_orphan_phases(result.trace)["sends_checked"] > 0


def test_phases_grow_along_pipeline():
    """The pipeline's long happened-before chains must raise phases cluster by
    cluster (each inter-cluster hop adds at least one, Lemma 3)."""
    protocol = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16))
    app = PipelineApplication(nprocs=16, iterations=1)
    Simulation(app, nprocs=16, protocol=protocol).run()
    assert protocol.phase_of(15) >= protocol.phase_of(0) + 3


def test_coordinated_checkpoints_are_saved_per_cluster():
    factory = WORKLOADS["stencil2d"]
    protocol = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16, checkpoint_interval=2,
                                         checkpoint_size_bytes=4096))
    app = factory()
    sim = Simulation(app, nprocs=app.nprocs, protocol=protocol)
    sim.run()
    # 5 iterations with interval 2 -> checkpoints at iterations 2 and 4 for
    # every rank.
    assert sim.storage.count() == 2 * 16
    for rank in range(16):
        assert sim.storage.latest(rank).iteration == 4


def test_garbage_collection_reclaims_log_memory():
    factory = lambda: Stencil2DApplication(nprocs=16, iterations=8)
    with_gc = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16, checkpoint_interval=2,
                                        checkpoint_size_bytes=4096,
                                        garbage_collect_logs=True))
    without_gc = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16, checkpoint_interval=2,
                                           checkpoint_size_bytes=4096,
                                           garbage_collect_logs=False))
    run(factory, with_gc)
    run(factory, without_gc)
    assert with_gc.pstats.gc_reclaimed_bytes > 0
    assert sum(with_gc.memory_usage_bytes().values()) < sum(
        without_gc.memory_usage_bytes().values()
    )


def test_protocol_overhead_is_small_but_nonzero():
    """Figure 6's qualitative claim on a small kernel: HydEE costs at most a
    few percent, and no more than logging every message."""
    factory = lambda: make_nas_application("lu", nprocs=16, iterations=2)
    native = run(factory).makespan
    hydee = run(factory, HydEEProtocol(HydEEConfig(clusters=CLUSTERS16))).makespan
    log_all = run(factory, HydEEProtocol(HydEEConfig(log_all_messages=True))).makespan
    assert native < hydee <= log_all * 1.0001
    assert hydee / native < 1.05
