"""Integration tests for the experiment harnesses (Table I, Figures 5-6,
containment) and their command-line entry points."""

import pytest

from repro.analysis import (
    analytic_netpipe_experiment,
    build_figure6,
    build_table1,
    by_config,
    render_containment,
    render_figure6,
    render_table1,
    run_containment_experiment,
    run_netpipe_experiment,
)
from repro.clustering.presets import TABLE1_PAPER_VALUES
from repro.experiments import ablation_clusters, ablation_piggyback, table1


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_table1(nprocs=256)

    def test_all_six_benchmarks_present(self, rows):
        assert sorted(r.benchmark for r in rows) == ["bt", "cg", "ft", "lu", "mg", "sp"]

    def test_cluster_counts_match_paper(self, rows):
        for row in rows:
            assert row.num_clusters == TABLE1_PAPER_VALUES[row.benchmark]["clusters"]

    def test_rollback_fraction_close_to_paper(self, rows):
        for row in rows:
            paper = TABLE1_PAPER_VALUES[row.benchmark]["rollback_pct"]
            assert row.rollback_pct == pytest.approx(paper, abs=6.0), row.benchmark

    def test_logged_fraction_close_to_paper(self, rows):
        for row in rows:
            paper = TABLE1_PAPER_VALUES[row.benchmark]["logged_pct"]
            assert row.logged_pct == pytest.approx(paper, abs=8.0), row.benchmark

    def test_ft_is_the_outlier_as_in_the_paper(self, rows):
        by_name = {r.benchmark: r for r in rows}
        assert by_name["ft"].logged_pct > 40
        assert all(by_name[b].logged_pct < 30 for b in ("bt", "cg", "lu", "mg", "sp"))

    def test_total_volumes_same_order_of_magnitude_as_paper(self, rows):
        for row in rows:
            paper_total = TABLE1_PAPER_VALUES[row.benchmark]["total_gb"]
            assert 0.5 * paper_total <= row.total_gb <= 2.0 * paper_total, row.benchmark

    def test_render_table(self, rows):
        text = render_table1(rows)
        assert "BT" in text and "paper" in text.lower()

    def test_cli_entry_point(self, capsys):
        assert table1.main(["--nprocs", "64", "--benchmarks", "bt", "cg"]) == 0
        out = capsys.readouterr().out
        assert "BT" in out and "CG" in out


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        sizes = [1, 16, 32, 64, 512, 4096, 65536, 1 << 20]
        return run_netpipe_experiment(sizes=sizes, repeats=2)

    def test_hydee_never_faster_than_native(self, result):
        for config in ("hydee_no_logging", "hydee_logging"):
            assert all(v <= 1e-9 for v in result.latency_reduction_pct(config))
            assert all(v <= 1e-9 for v in result.bandwidth_reduction_pct(config))

    def test_overhead_small_and_vanishes_for_large_messages(self, result):
        degradation = result.latency_reduction_pct("hydee_logging")
        assert degradation[-1] > -2.5          # >= 64 KiB: almost no overhead
        assert min(degradation) > -45.0        # worst case bounded (peaks of Fig. 5)

    def test_logging_and_no_logging_nearly_equivalent(self, result):
        """Section V-C: sender-based logging itself is invisible."""
        for log, no_log in zip(result.latency_reduction_pct("hydee_logging"),
                               result.latency_reduction_pct("hydee_no_logging")):
            assert abs(log - no_log) < 5.0

    def test_piggyback_peak_exists_at_plateau_crossing(self, result):
        by_size = dict(zip(result.sizes, result.latency_reduction_pct("hydee_no_logging")))
        # 32 B + 12 piggybacked bytes crosses the first MX latency plateau.
        assert by_size[32] < by_size[1] - 5.0

    def test_simulation_matches_analytic_model(self, result):
        model = analytic_netpipe_experiment(sizes=result.sizes)
        simulated = result.latency_reduction_pct("hydee_logging")
        predicted = model["latency_reduction_logging_pct"]
        for sim_v, model_v in zip(simulated, predicted):
            assert sim_v == pytest.approx(model_v, abs=3.0)

    def test_text_rendering(self, result):
        assert "Figure 5" in result.as_text()


class TestFigure6:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_figure6(benchmarks=["lu", "mg"], nprocs=16, iterations=2)

    def test_normalized_times_shape(self, rows):
        for benchmark in ("lu", "mg"):
            configs = by_config(rows, benchmark)
            assert configs["native"].normalized == pytest.approx(1.0)
            assert 1.0 < configs["hydee"].normalized < 1.08
            assert configs["hydee"].normalized <= configs["message_logging"].normalized + 1e-6

    def test_hydee_logs_less_than_message_logging(self, rows):
        for benchmark in ("lu", "mg"):
            configs = by_config(rows, benchmark)
            assert configs["hydee"].logged_fraction < configs["message_logging"].logged_fraction
            assert configs["message_logging"].logged_fraction == pytest.approx(1.0)

    def test_render(self, rows):
        text = render_figure6(rows)
        assert "Figure 6" in text and "LU" in text


class TestContainmentExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_containment_experiment(nprocs=16, iterations=6, fail_at_iteration=4)

    def test_all_protocols_recover_correctly(self, rows):
        assert all(row.results_match_reference for row in rows)
        assert all(row.send_sequences_match for row in rows)

    def test_rollback_ordering(self, rows):
        by_name = {row.protocol: row for row in rows}
        assert by_name["message-logging"].ranks_rolled_back == 1
        assert by_name["hydee"].ranks_rolled_back == 4
        assert by_name["coordinated"].ranks_rolled_back == 16

    def test_hydee_replays_and_suppresses(self, rows):
        hydee = next(row for row in rows if row.protocol == "hydee")
        assert hydee.replayed_messages > 0
        assert hydee.suppressed_orphans > 0

    def test_render(self, rows):
        assert "protocol" in render_containment(rows)


class TestAblations:
    def test_piggyback_ablation_policies_ordering(self):
        rows = ablation_piggyback.run(sizes=[16, 64, 2048, 65536])
        for row in rows:
            assert row["none_pct"] == pytest.approx(0.0, abs=1e-9)
            assert row["inline-small-separate-large_pct"] >= 0.0
            # logging adds a bounded extra cost
            assert 0.0 <= row["logging_extra_pct"] < 10.0

    def test_cluster_sweep_frontier(self):
        rows = ablation_clusters.run(benchmark="bt", nprocs=64, counts=[2, 4, 8])
        rollbacks = [row["rollback_pct"] for row in rows]
        assert rollbacks == sorted(rollbacks, reverse=True)
        assert all(0 <= row["logged_pct"] <= 100 for row in rows)
