"""Integration tests for schedule-space exploration.

The positive half of the race detector's contract: the pinned faulty
scenarios (HydEE partial rollback, coordinated global rollback,
message-logging replay) are interleaving-invariant across 10+ seeded
adversarial schedules.  The negative half: an artificially order-sensitive
fixture -- two non-commuting same-time mutations of observable state -- IS
flagged, its witness shrinks to a handful of decisions, and the shrunk
witness replays the same first divergence deterministically, including
after a save/load round-trip.  Finally, the ``schedule-explore`` campaign
job must produce byte-identical records serial vs ``--workers N``.
"""

import json

from repro.campaign import ResultsStore, run_campaign, run_spec
from repro.scenarios.build import build
from repro.scenarios.spec import ProtocolSpec, ScenarioSpec, WorkloadSpec
from repro.schedexplore.cli import main as schedexplore_main
from repro.schedexplore.explorer import (
    explore,
    explore_factory,
    prepare_spec,
    replay_witness,
)
from repro.schedexplore.pinned import PINNED_SCENARIOS, available_pinned, pinned_spec
from repro.schedexplore.witness import ScheduleWitness


class TestPinnedScenariosAreInterleavingInvariant:
    def test_ten_adversarial_seeds_reproduce_every_observable(self):
        # Acceptance criterion: 10+ seeded interleavings over the pinned
        # HydEE / coordinated / message-logging fault scenarios yield
        # bit-identical final fingerprints and normalized recovery traces.
        for name, spec in sorted(PINNED_SCENARIOS.items()):
            report = explore(spec, seeds=10, policy="adversarial")
            assert report.invariant, (
                f"{name}: schedule-space divergence: "
                f"{[w.divergence for w in report.witnesses]}"
            )
            assert report.interleavings == 11
            # All three pinned scenarios run on the flat network, so timing
            # joined the invariant and the makespan spread collapsed to zero.
            assert report.times_compared
            payload = report.to_payload()
            assert payload["makespan"]["spread"] == 0.0
            base = report.baseline
            assert base.trace_digest is not None
            assert base.boundary_fingerprints, f"{name}: no checkpoint boundaries seen"
            for run in report.runs:
                assert run.final_fingerprint == base.final_fingerprint
                assert run.trace_digest == base.trace_digest
                assert run.boundary_fingerprints == base.boundary_fingerprints
                # The seeds genuinely perturbed the schedule: every run hit
                # equal-time ties it could (and mostly did) reorder.
                assert run.tie_dispatches > 0

    def test_random_policy_is_also_invariant(self):
        report = explore(
            PINNED_SCENARIOS["message-logging-ring"], seeds=3, policy="random"
        )
        assert report.invariant


# ----------------------------------------------------- order-sensitive fixture
_FIXTURE_SPEC = prepare_spec(
    ScenarioSpec(
        name="order-sensitive-fixture",
        workload=WorkloadSpec(kind="ring", nprocs=4, iterations=2),
        protocol=ProtocolSpec(name="none"),
    )
)


def order_sensitive_factory():
    """A simulation whose outcome depends on one equal-time tie-break.

    Two callbacks at the same timestamp mutate an observable counter
    non-commutatively (``+1`` then ``*2`` vs ``*2`` then ``+1``), exactly
    the kind of order sensitivity the explorer exists to flag.
    """
    sim = build(_FIXTURE_SPEC)

    def bump():
        sim.stats.ranks_rolled_back += 1

    def double():
        sim.stats.ranks_rolled_back *= 2

    sim.engine.schedule_at(1e-05, bump)
    sim.engine.schedule_at(1e-05, double)
    return sim


def _first_witness():
    report = explore_factory(order_sensitive_factory, seeds=3, policy="adversarial")
    assert not report.invariant
    return report.witnesses[0]


class TestOrderSensitiveFixtureIsFlagged:
    def test_explorer_flags_the_race_and_shrinks_the_witness(self):
        report = explore_factory(
            order_sensitive_factory, seeds=3, policy="adversarial"
        )
        assert not report.invariant
        assert report.witnesses
        for witness in report.witnesses:
            assert witness.divergence["kind"] == "final-fingerprint"
            # Delta-debugging stripped the irrelevant reorderings: a raw
            # adversarial schedule carries dozens of decisions, the shrunk
            # witness keeps only the few that matter.
            assert witness.original_decisions > len(witness.decisions)
            assert 0 < len(witness.decisions) <= 8

    def test_random_policy_also_flags_the_race(self):
        report = explore_factory(
            order_sensitive_factory, seeds=5, policy="random", shrink=False
        )
        assert not report.invariant

    def test_shrunk_witness_replays_deterministically(self):
        witness = _first_witness()
        outcomes = [
            replay_witness(witness, sim_factory=order_sensitive_factory)
            for _ in range(2)
        ]
        for outcome in outcomes:
            assert outcome["reproduced"], outcome
        # Replay is deterministic: both replays observe the same divergence.
        assert outcomes[0]["divergence"] == outcomes[1]["divergence"]

    def test_witness_from_file_reproduces_same_first_divergence(self, tmp_path):
        witness = _first_witness()
        path = str(tmp_path / "fixture.witness.json")
        witness.save(path)
        loaded = ScheduleWitness.load(path)
        assert loaded.decisions == witness.decisions
        assert loaded.divergence == witness.divergence
        outcome = replay_witness(loaded, sim_factory=order_sensitive_factory)
        assert outcome["reproduced"], outcome
        assert outcome["divergence"]["kind"] == witness.divergence["kind"]
        assert outcome["divergence"]["index"] == witness.divergence["index"]


# ------------------------------------------------------------- campaign job
def _canonical(records):
    return json.dumps(records, sort_keys=True, separators=(",", ":"))


class TestScheduleExploreCampaignJob:
    def test_serial_vs_workers_byte_identical(self, tmp_path):
        specs = [pinned_spec(name, seeds=2) for name in available_pinned()]
        serial_store = ResultsStore(str(tmp_path / "serial.json"))
        parallel_store = ResultsStore(str(tmp_path / "parallel.json"))
        serial = run_campaign(specs, workers=1, store=serial_store)
        parallel = run_campaign(specs, workers=2, store=parallel_store)
        assert serial.executed == len(specs) and parallel.executed == len(specs)
        assert _canonical(serial.records) == _canonical(parallel.records)
        assert (tmp_path / "serial.json").read_bytes() == (
            tmp_path / "parallel.json"
        ).read_bytes()

    def test_job_payload_reports_invariance_verdict(self):
        record, _ = run_spec(pinned_spec("message-logging-ring", seeds=2))
        assert record["analysis"] == "schedule-explore"
        result = record["result"]
        assert result["invariant"] is True
        assert result["divergences"] == 0
        assert result["interleavings"] == 3
        assert result["status"] == "completed"
        assert result["witnesses"] == []
        assert result["checkpoint_boundaries"] > 0

    def test_exploration_parameters_rekey_the_cache(self):
        two = pinned_spec("message-logging-ring", seeds=2)
        three = pinned_spec("message-logging-ring", seeds=3)
        assert two.spec_hash() != three.spec_hash()


# -------------------------------------------------------------------- CLI
class TestExplorerCli:
    def test_explore_pinned_scenario_exits_zero(self, capsys):
        code = schedexplore_main(
            ["explore", "--pinned", "message-logging-ring", "--seeds", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "INVARIANT" in out
        assert "0 divergent" in out

    def test_list_shows_pinned_scenarios_and_policies(self, capsys):
        assert schedexplore_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in available_pinned():
            assert name in out
        assert "adversarial" in out

    def test_replay_of_a_stale_witness_exits_one(self, tmp_path, capsys):
        # A witness whose decisions no longer diverge (empty = pure FIFO)
        # must be reported as NOT reproduced, exit 1.
        witness = ScheduleWitness(
            policy="adversarial",
            seed=0,
            decisions={},
            divergence={
                "kind": "final-fingerprint",
                "index": None,
                "baseline": "a",
                "observed": "b",
            },
            scenario=PINNED_SCENARIOS["message-logging-ring"].to_dict(),
        )
        path = str(tmp_path / "stale.witness.json")
        witness.save(path)
        assert schedexplore_main(["replay", path]) == 1
        assert "NOT reproduced" in capsys.readouterr().out

    def test_explore_requires_exactly_one_source(self, capsys):
        assert schedexplore_main(["explore"]) == 2
        assert "exactly one of" in capsys.readouterr().err
