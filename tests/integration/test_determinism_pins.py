"""Pinned recovery-trace regression tests.

These tests pin the *exact* observable behaviour of recovery runs (HydEE and
coordinated checkpointing, with failures) against a JSON fixture generated
from the pre-overhaul simulator.  They are the proof that the checkpoint
snapshot-strategy and event-loop hot-path changes did not alter a single
event: makespans, event counts, per-rank results, protocol counters and
recovery reports must all be byte-identical to the seed behaviour.

Regenerate the fixture (ONLY when a behaviour change is intended and
reviewed) with::

    PYTHONPATH=src python tests/integration/test_determinism_pins.py --regen
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import pytest

from repro.core.config import HydEEConfig
from repro.core.protocol import HydEEProtocol
from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol
from repro.ftprotocols.message_logging import FullMessageLoggingProtocol
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.simulation import Simulation
from repro.workloads.nas import make_nas_application
from repro.workloads.ring import RingApplication
from repro.workloads.stencil import Stencil2DApplication

FIXTURE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "data",
    "pinned_recovery_traces.json",
)

CLUSTERS16 = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]
CLUSTERS8 = [[0, 1, 2, 3], [4, 5, 6, 7]]


def _hydee(clusters, interval):
    return HydEEProtocol(
        HydEEConfig(
            clusters=clusters,
            checkpoint_interval=interval,
            checkpoint_size_bytes=16 * 1024,
        )
    )


SCENARIOS = {
    "hydee-stencil2d-single-failure": lambda: (
        Stencil2DApplication(nprocs=16, iterations=8),
        _hydee(CLUSTERS16, 2),
        [FailureEvent(ranks=[9], at_iteration=5)],
    ),
    "hydee-stencil2d-ckpt-every-iteration": lambda: (
        Stencil2DApplication(nprocs=16, iterations=8),
        _hydee(CLUSTERS16, 1),
        [FailureEvent(ranks=[6], at_iteration=6)],
    ),
    "hydee-ring-two-failures": lambda: (
        RingApplication(nprocs=8, iterations=8),
        _hydee(CLUSTERS8, 2),
        [
            FailureEvent(ranks=[2], at_iteration=3),
            FailureEvent(ranks=[5], at_iteration=6, rank_trigger=5),
        ],
    ),
    "hydee-nas-cg": lambda: (
        make_nas_application("cg", nprocs=16, iterations=5),
        _hydee(CLUSTERS16, 2),
        [FailureEvent(ranks=[11], at_iteration=3)],
    ),
    "coordinated-stencil2d": lambda: (
        Stencil2DApplication(nprocs=16, iterations=6),
        CoordinatedCheckpointProtocol(
            checkpoint_interval=2, checkpoint_size_bytes=16 * 1024
        ),
        [FailureEvent(ranks=[6], at_iteration=4)],
    ),
    "message-logging-ring": lambda: (
        RingApplication(nprocs=8, iterations=6),
        FullMessageLoggingProtocol(
            checkpoint_interval=2, checkpoint_size_bytes=16 * 1024
        ),
        [FailureEvent(ranks=[3], at_iteration=3)],
    ),
}


def run_scenario(name: str) -> Dict[str, Any]:
    """Run one pinned scenario and return its canonical digest."""
    app, protocol, failures = SCENARIOS[name]()
    sim = Simulation(
        app,
        nprocs=app.nprocs,
        protocol=protocol,
        failures=FailureInjector(failures),
    )
    result = sim.run()
    digest: Dict[str, Any] = {
        "status": result.status,
        "makespan": result.makespan,
        "events_processed": result.stats.events_processed,
        "checkpoints_taken": result.stats.checkpoints_taken,
        "checkpoint_bytes": result.stats.checkpoint_bytes,
        "ranks_rolled_back": result.stats.ranks_rolled_back,
        "control_messages": result.stats.control_messages,
        "logged_messages": result.stats.logged_messages,
        "app_messages": result.stats.app_messages,
        "rank_results": {str(r): v for r, v in sorted(result.rank_results.items())},
        "protocol_counters": protocol.pstats.as_dict(),
    }
    reports = getattr(protocol, "recovery_reports", None)
    if reports is not None:
        digest["recovery_reports"] = reports
    # Round-trip through JSON so the comparison happens in the fixture's
    # domain (tuples become lists, int keys become strings, float repr
    # normalised) -- byte-identical means identical JSON.
    return json.loads(json.dumps(digest, sort_keys=True))


def generate_all() -> Dict[str, Any]:
    return {name: run_scenario(name) for name in sorted(SCENARIOS)}


@pytest.fixture(scope="module")
def pinned() -> Dict[str, Any]:
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_recovery_trace_pinned(name, pinned):
    assert name in pinned, (
        f"scenario {name!r} missing from the fixture; regenerate with "
        f"`PYTHONPATH=src python {__file__} --regen` on a trusted baseline"
    )
    assert run_scenario(name) == pinned[name]


def test_fixture_covers_exactly_the_scenarios(pinned):
    assert sorted(pinned) == sorted(SCENARIOS)


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("pass --regen to overwrite the pinned fixture")
    payload = generate_all()
    with open(FIXTURE, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE} ({len(payload)} scenarios)")
