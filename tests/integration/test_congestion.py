"""Integration tests for the topology layer: flat equivalence, congested
recovery divergence, and campaign determinism over contended topologies."""

import dataclasses

import pytest

from repro.analysis.congestion import (
    congestion_specs,
    recovery_divergence,
    render_congestion,
    rows_from_campaign,
    run_congestion_experiment,
)
from repro.campaign import ResultsStore, run_campaign
from repro.experiments import congestion_recovery
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    NetworkSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


def _representative_specs():
    """Scenario shapes from the existing experiments (no topology)."""
    return [
        ScenarioSpec(
            name="eq:native-ring",
            workload=WorkloadSpec(kind="ring", nprocs=6, iterations=4),
            protocol=ProtocolSpec(name="native"),
        ),
        ScenarioSpec(
            name="eq:netpipe",
            workload=WorkloadSpec(
                kind="netpipe", nprocs=2, iterations=1,
                params={"sizes": [64, 4096], "repeats": 2},
            ),
            protocol=ProtocolSpec(name="hydee"),
        ),
        ScenarioSpec(
            name="eq:hydee-failure",
            workload=WorkloadSpec(kind="stencil2d", nprocs=8, iterations=5),
            protocol=ProtocolSpec(
                name="hydee",
                options={"checkpoint_interval": 2},
                clustering=ClusteringSpec(method="block", num_clusters=2),
            ),
            failures=(FailureSpec(ranks=(3,), at_iteration=3),),
        ),
        ScenarioSpec(
            name="eq:coordinated-failure",
            workload=WorkloadSpec(kind="cg", nprocs=9, iterations=3),
            protocol=ProtocolSpec(
                name="coordinated", options={"checkpoint_interval": 2}
            ),
            failures=(FailureSpec(ranks=(2,), at_iteration=2),),
        ),
    ]


class TestFlatTopologyEquivalence:
    def test_flat_topology_reproduces_pre_topology_results(self):
        """Every scenario run through the degenerate flat TopologySpec must
        produce a record with metrics identical to the topology-free run."""
        baseline = run_campaign(_representative_specs())
        flat_specs = [
            dataclasses.replace(
                spec,
                network=dataclasses.replace(
                    spec.network, topology=TopologySpec(preset="flat")
                ),
            )
            for spec in _representative_specs()
        ]
        flat = run_campaign(flat_specs)
        for base_record, flat_record in zip(baseline.records, flat.records):
            assert flat_record["result"] == base_record["result"]

    def test_flat_topology_spec_hash_differs_but_name_matches(self):
        spec = _representative_specs()[0]
        flat = dataclasses.replace(
            spec, network=NetworkSpec(topology=TopologySpec(preset="flat"))
        )
        # The flat-topology spec is a distinct cache entry (its serialised
        # form names the topology); only the *metrics* are identical.
        assert flat.spec_hash() != spec.spec_hash()


@pytest.fixture(scope="module")
def congestion_rows():
    return run_congestion_experiment(
        nprocs=16, iterations=6, oversubscriptions=(1.0, 8.0)
    )


class TestCongestedRecovery:
    def test_recovery_time_diverges_with_oversubscription(self, congestion_rows):
        divergence = recovery_divergence(congestion_rows)
        assert divergence["coordinated"] > divergence["hydee"]

    def test_contention_slows_recovery_monotonically(self, congestion_rows):
        by_key = {(r.protocol, r.oversubscription): r for r in congestion_rows}
        for protocol in ("hydee", "coordinated"):
            assert (
                by_key[(protocol, 8.0)].recovery_seconds
                >= by_key[(protocol, 1.0)].recovery_seconds
            )
            # Queueing on the oversubscribed fabric is what causes it.
            assert (
                by_key[(protocol, 8.0)].inter_cluster_wait_s
                > by_key[(protocol, 1.0)].inter_cluster_wait_s
            )

    def test_hydee_contains_the_rollback(self, congestion_rows):
        by_key = {(r.protocol, r.oversubscription): r for r in congestion_rows}
        for oversub in (1.0, 8.0):
            assert by_key[("hydee", oversub)].ranks_rolled_back == 4
            assert by_key[("coordinated", oversub)].ranks_rolled_back == 16
            assert by_key[("hydee", oversub)].replayed_messages > 0

    def test_render(self, congestion_rows):
        text = render_congestion(congestion_rows)
        assert "recovery_ms" in text
        assert "hydee" in text and "coordinated" in text

    def test_cli_entry_point(self, capsys):
        assert congestion_recovery.main(
            ["--nprocs", "8", "--iterations", "4", "--ranks-per-node", "2",
             "--fail-rank", "3", "--fail-at-iteration", "3",
             "--oversubscription", "1", "4", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery growth" in out


class TestContendedCampaignDeterminism:
    def test_serial_and_parallel_runs_byte_identical(self, tmp_path):
        specs = congestion_specs(
            nprocs=8, iterations=4, failed_rank=3, fail_at_iteration=3,
            oversubscriptions=(4.0,), ranks_per_node=2,
        )
        serial_store = ResultsStore(str(tmp_path / "serial.json"))
        parallel_store = ResultsStore(str(tmp_path / "parallel.json"))
        serial = run_campaign(specs, workers=1, store=serial_store)
        parallel = run_campaign(specs, workers=3, store=parallel_store)
        assert serial.records == parallel.records
        assert (tmp_path / "serial.json").read_bytes() == (
            tmp_path / "parallel.json"
        ).read_bytes()

    def test_rows_reject_truncated_runs(self, tmp_path):
        import copy

        from repro.errors import ConfigurationError

        specs = congestion_specs(
            nprocs=8, iterations=4, failed_rank=3, fail_at_iteration=3,
            oversubscriptions=(2.0,), ranks_per_node=2,
        )
        outcome = run_campaign(specs)
        doctored = copy.deepcopy(outcome)
        doctored.records[0]["result"]["status"] = "timeout"
        with pytest.raises(ConfigurationError):
            rows_from_campaign(doctored)

    def test_congestion_records_cache_and_rebuild_rows(self, tmp_path):
        specs = congestion_specs(
            nprocs=8, iterations=4, failed_rank=3, fail_at_iteration=3,
            oversubscriptions=(2.0,), ranks_per_node=2,
        )
        store = ResultsStore(str(tmp_path / "store.json"))
        first = run_campaign(specs, store=store)
        assert first.executed == len(specs)
        second = run_campaign(specs, store=ResultsStore(str(tmp_path / "store.json")))
        assert second.cache_hits == len(specs)
        rows = rows_from_campaign(second)
        assert {row.protocol for row in rows} == {"hydee", "coordinated"}
