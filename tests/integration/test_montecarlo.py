"""Integration tests for Monte Carlo fault campaigns:

* serial vs ``--workers 4`` replica campaigns produce byte-identical store
  files (the acceptance gate of the fault-model subsystem),
* the ``montecarlo`` campaign job aggregates deterministically and its
  records survive the cache round trip,
* the efficiency-vs-MTBF experiment reproduces the paper's qualitative
  ordering (HydEE wasted work < coordinated) across a 3-point MTBF sweep,
  and its table rebuilds from a cached store via ``repro-campaign query``.
"""

import json

import pytest

from repro.analysis.efficiency import (
    containment_holds,
    render_efficiency,
    rows_from_resultset,
    run_efficiency_experiment,
)
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.faults import FaultModelSpec
from repro.faults.montecarlo import replica_specs, run_montecarlo
from repro.results.query import ResultSet
from repro.scenarios import (
    ClusteringSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

REPLICAS = 20


def mc_base(name="mc", protocol="hydee", mtbf_s=8e-3, seed=0) -> ScenarioSpec:
    clustering = (
        ClusteringSpec(method="block", num_clusters=4)
        if protocol == "hydee"
        else ClusteringSpec()
    )
    return ScenarioSpec(
        name=name,
        workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=6),
        protocol=ProtocolSpec(
            name=protocol,
            options={"checkpoint_interval": 1, "checkpoint_size_bytes": 64 * 1024},
            clustering=clustering,
        ),
        fault_model=FaultModelSpec(
            distribution="exponential",
            params={"mtbf_s": mtbf_s},
            horizon_s=2e-3,
            seed=seed,
        ),
        config={"raise_on_incomplete": False},
    )


class TestSerialParallelByteIdentity:
    def test_twenty_replica_stores_identical_serial_vs_four_workers(self, tmp_path):
        base = mc_base()
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        serial = run_montecarlo(
            base, replicas=REPLICAS, workers=1, store=ResultsStore(str(serial_path))
        )
        parallel = run_montecarlo(
            base, replicas=REPLICAS, workers=4, store=ResultsStore(str(parallel_path))
        )
        assert serial.executed == REPLICAS and parallel.executed == REPLICAS
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        assert serial.metrics.to_tree() == parallel.metrics.to_tree()

    def test_cached_rerun_skips_execution_and_aggregates_identically(self, tmp_path):
        base = mc_base()
        store = ResultsStore(str(tmp_path / "store.json"))
        first = run_montecarlo(base, replicas=REPLICAS, workers=2, store=store)
        again = run_montecarlo(
            base, replicas=REPLICAS, workers=1, store=ResultsStore(store.path)
        )
        assert again.executed == 0 and again.cache_hits == REPLICAS
        assert again.metrics.to_tree() == first.metrics.to_tree()

    def test_growing_the_campaign_only_runs_new_replicas(self, tmp_path):
        base = mc_base()
        store = ResultsStore(str(tmp_path / "store.json"))
        run_montecarlo(base, replicas=5, workers=1, store=store)
        grown = run_montecarlo(
            base, replicas=8, workers=1, store=ResultsStore(store.path)
        )
        assert grown.cache_hits == 5 and grown.executed == 3


class TestMonteCarloSemantics:
    def test_replica_specs_rekey_fault_model_and_hashes(self):
        base = mc_base()
        specs = replica_specs(base, 4)
        assert [s.fault_model.replica for s in specs] == [0, 1, 2, 3]
        assert len({s.spec_hash() for s in specs}) == 4
        assert all(s.tags["mc_base"] == base.spec_hash() for s in specs)
        assert all(s.tags["analysis"] == "montecarlo-replica" for s in specs)

    def test_mc_base_hash_independent_of_replica_count_and_job_tag(self):
        # Growing a campaign (or launching it via the 'montecarlo' job tag)
        # must not re-key the replicas, or nothing would ever cache-hit.
        import dataclasses

        plain = mc_base()
        tagged_20 = dataclasses.replace(
            plain, tags={"analysis": "montecarlo", "replicas": 20}
        )
        tagged_30 = dataclasses.replace(
            plain, tags={"analysis": "montecarlo", "replicas": 30}
        )
        hashes = lambda b: [s.spec_hash() for s in replica_specs(b, 3)]  # noqa: E731
        assert hashes(plain) == hashes(tagged_20) == hashes(tagged_30)

    def test_replica_specs_need_a_fault_model(self):
        from repro.errors import ConfigurationError

        plain = ScenarioSpec(
            name="plain", workload=WorkloadSpec(kind="ring", nprocs=4)
        )
        with pytest.raises(ConfigurationError):
            replica_specs(plain, 3)

    def test_aggregate_has_faults_namespace_statistics(self):
        result = run_montecarlo(mc_base(), replicas=6)
        assert result.metric("faults.replicas") == 6
        assert 0 < result.metric("faults.completed_replicas") <= 6
        mean = result.metric("faults.sim.makespan.mean")
        low = result.metric("faults.sim.makespan.min")
        high = result.metric("faults.sim.makespan.max")
        assert low <= mean <= high
        assert result.metric("faults.sim.makespan.std") >= 0
        assert result.metric("faults.sim.total_compute_time.mean") > 0
        # Injector health counters aggregate too (every replica has them).
        assert result.metric("faults.sim.injector.failed_ranks.mean") is not None

    def test_montecarlo_job_record_survives_cache_round_trip(self, tmp_path):
        spec = mc_base(name="mc-job").with_name("mc-job")
        import dataclasses

        spec = dataclasses.replace(
            spec, tags={"analysis": "montecarlo", "replicas": 5}
        )
        store_path = tmp_path / "job.json"
        outcome = run_campaign([spec], workers=1, store=ResultsStore(str(store_path)))
        fresh = outcome.records[0]
        cached = ResultsStore(str(store_path)).get(spec.spec_hash())
        canonical = lambda r: json.dumps(r, sort_keys=True)  # noqa: E731
        assert canonical(fresh) == canonical(cached)
        metrics = fresh["result"]["metrics"]
        assert metrics["faults"]["replicas"] == 5
        assert len(fresh["result"]["data"]["replicas"]) == 5


class TestEfficiencyExperiment:
    @pytest.fixture(scope="class")
    def experiment(self, tmp_path_factory):
        store_path = tmp_path_factory.mktemp("efficiency") / "store.json"
        store = ResultsStore(str(store_path))
        rows = run_efficiency_experiment(
            protocols=("hydee", "coordinated"),
            mtbf_factors=(4.0, 8.0, 16.0),
            replicas=20,
            workers=2,
            store=store,
        )
        return rows, store_path

    def test_containment_ordering_across_three_point_sweep(self, experiment):
        rows, _ = experiment
        assert len(rows) == 6  # 2 protocols x 3 MTBF points
        assert len({row.mtbf_s for row in rows}) == 3
        assert containment_holds(rows)
        for row in rows:
            assert row.completed_replicas > 0
            assert 0 < row.efficiency < 1
            assert row.wasted_work_s >= 0

    def test_hydee_rolls_back_fewer_ranks(self, experiment):
        rows, _ = experiment
        by_key = {(r.protocol, r.mtbf_s): r for r in rows}
        for (protocol, mtbf), row in by_key.items():
            if protocol == "hydee":
                assert row.ranks_rolled_back_mean < \
                    by_key[("coordinated", mtbf)].ranks_rolled_back_mean

    def test_table_rebuilds_from_cached_store(self, experiment):
        rows, store_path = experiment
        rebuilt = rows_from_resultset(ResultSet.from_store(str(store_path)))
        assert [dict(r) for r in rebuilt] == [dict(r) for r in rows]
        assert "efficiency" in render_efficiency(rebuilt)

    def test_query_cli_renders_the_table(self, experiment, capsys):
        _, store_path = experiment
        from repro.campaign.cli import main as campaign_main

        assert campaign_main(
            ["query", str(store_path), "--table", "efficiency"]
        ) == 0
        out = capsys.readouterr().out
        assert "hydee" in out and "coordinated" in out and "wasted_us" in out


class TestMixedCampaignStores:
    def test_efficiency_table_rejects_replicas_of_two_campaigns(self, tmp_path):
        from repro.errors import ConfigurationError

        def run_with_seed(seed, store):
            return run_efficiency_experiment(
                nprocs=8,
                iterations=3,
                workload_kind="ring",
                protocols=("coordinated",),
                mtbf_factors=(4.0,),
                replicas=2,
                seed=seed,
                store=store,
            )

        store = ResultsStore(str(tmp_path / "mixed.json"))
        run_with_seed(0, store)
        # The second sweep lands at the same (protocol, mtbf) coordinates;
        # its aggregation over the shared store must refuse to pool the two
        # campaigns' replicas -- as must any later query of that store.
        with pytest.raises(ConfigurationError, match="mixes replicas"):
            run_with_seed(1, ResultsStore(store.path))
        with pytest.raises(ConfigurationError, match="mixes replicas"):
            rows_from_resultset(ResultSet.from_store(ResultsStore(store.path)))
