"""Integration tests for the baseline protocols' failure handling.

These pin down the comparison points the paper argues against: global
coordinated checkpointing rolls everyone back, pessimistic message logging
contains the failure to the failed process but logs everything, and the
hybrid-with-event-logging protocol behaves like HydEE plus determinant costs.
"""

import pytest

from repro import (
    CoordinatedCheckpointProtocol,
    FullMessageLoggingProtocol,
    HybridEventLoggingProtocol,
    HydEEConfig,
    HydEEProtocol,
    Simulation,
)
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.workloads import PipelineApplication, RingApplication, Stencil2DApplication

CLUSTERS16 = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]
STENCIL = lambda: Stencil2DApplication(nprocs=16, iterations=8)


def run(app_factory, protocol=None, failures=None):
    app = app_factory()
    return Simulation(app, nprocs=app.nprocs, protocol=protocol, failures=failures).run()


class TestCoordinatedCheckpointing:
    def test_everyone_rolls_back(self):
        reference = run(STENCIL)
        protocol = CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                 checkpoint_size_bytes=16 * 1024)
        result = run(STENCIL, protocol,
                     FailureInjector([FailureEvent(ranks=[5], at_iteration=5)]))
        assert result.completed
        assert result.rank_results == reference.rank_results
        assert result.stats.ranks_rolled_back == 16
        assert protocol.rollback_events[0]["restore_iteration"] == 4

    def test_failure_before_first_checkpoint_restarts_everything(self):
        reference = run(STENCIL)
        protocol = CoordinatedCheckpointProtocol(checkpoint_interval=10,
                                                 checkpoint_size_bytes=16 * 1024)
        result = run(STENCIL, protocol,
                     FailureInjector([FailureEvent(ranks=[3], at_iteration=2)]))
        assert result.rank_results == reference.rank_results
        assert protocol.rollback_events[0]["restore_iteration"] == 0

    def test_no_logging_at_all(self):
        protocol = CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                 checkpoint_size_bytes=16 * 1024)
        result = run(STENCIL, protocol)
        assert result.stats.logged_messages == 0
        assert protocol.pstats.logged_bytes == 0


class TestFullMessageLogging:
    @pytest.mark.parametrize("factory", [STENCIL,
                                         lambda: RingApplication(nprocs=16, iterations=6),
                                         lambda: PipelineApplication(nprocs=16, iterations=5)],
                             ids=["stencil", "ring", "pipeline"])
    def test_only_failed_rank_rolls_back(self, factory):
        reference = run(factory)
        protocol = FullMessageLoggingProtocol(checkpoint_interval=2,
                                              checkpoint_size_bytes=16 * 1024)
        result = run(factory, protocol,
                     FailureInjector([FailureEvent(ranks=[6], at_iteration=4)]))
        assert result.completed
        assert result.rank_results == reference.rank_results
        assert result.stats.ranks_rolled_back == 1

    def test_logs_every_message_and_determinants(self):
        protocol = FullMessageLoggingProtocol(checkpoint_interval=2,
                                              checkpoint_size_bytes=16 * 1024)
        result = run(STENCIL, protocol)
        assert result.stats.logged_messages == result.stats.app_messages
        assert protocol.pstats.determinants_logged == result.stats.app_messages
        assert protocol.determinant_latency_s > 0

    def test_duplicate_suppression_counts(self):
        protocol = FullMessageLoggingProtocol(checkpoint_interval=2,
                                              checkpoint_size_bytes=16 * 1024)
        result = run(STENCIL, protocol,
                     FailureInjector([FailureEvent(ranks=[6], at_iteration=5)]))
        assert result.completed
        # The recovering rank re-sent messages its peers had already received.
        assert result.stats.extra.get("suppressed_duplicates", 0) > 0

    def test_memory_footprint_larger_than_hydee(self):
        full = FullMessageLoggingProtocol(checkpoint_interval=None)
        run(STENCIL, full)
        hydee = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16))
        run(STENCIL, hydee)
        assert (
            sum(full.memory_usage_bytes().values())
            > sum(hydee.memory_usage_bytes().values())
            > 0
        )


class TestHybridEventLogging:
    def test_recovery_matches_reference_and_logs_determinants(self):
        reference = run(STENCIL)
        protocol = HybridEventLoggingProtocol(
            HydEEConfig(clusters=CLUSTERS16, checkpoint_interval=2,
                        checkpoint_size_bytes=16 * 1024)
        )
        result = run(STENCIL, protocol,
                     FailureInjector([FailureEvent(ranks=[5], at_iteration=5)]))
        assert result.completed
        assert result.rank_results == reference.rank_results
        assert result.stats.ranks_rolled_back == 4
        assert protocol.pstats.determinants_logged > 0

    def test_costs_at_least_as_much_as_hydee(self):
        hydee = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16))
        hybrid = HybridEventLoggingProtocol(HydEEConfig(clusters=CLUSTERS16))
        hydee_result = run(STENCIL, hydee)
        hybrid_result = run(STENCIL, hybrid)
        assert hybrid_result.makespan > hydee_result.makespan
        assert hybrid_result.rank_results == hydee_result.rank_results


class TestContainmentComparison:
    def test_rollback_extent_ordering(self):
        """message logging (1 rank) < HydEE (one cluster) < coordinated (all)."""
        failure = lambda: FailureInjector([FailureEvent(ranks=[5], at_iteration=5)])
        hydee = run(STENCIL, HydEEProtocol(HydEEConfig(clusters=CLUSTERS16,
                                                       checkpoint_interval=2,
                                                       checkpoint_size_bytes=16 * 1024)),
                    failure())
        logging_ = run(STENCIL, FullMessageLoggingProtocol(checkpoint_interval=2,
                                                           checkpoint_size_bytes=16 * 1024),
                       failure())
        coordinated = run(STENCIL, CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                                 checkpoint_size_bytes=16 * 1024),
                          failure())
        assert logging_.stats.ranks_rolled_back == 1
        assert hydee.stats.ranks_rolled_back == 4
        assert coordinated.stats.ranks_rolled_back == 16

    def test_logged_volume_ordering(self):
        """coordinated (0) < HydEE (inter-cluster only) < full message logging."""
        hydee = HydEEProtocol(HydEEConfig(clusters=CLUSTERS16))
        full = FullMessageLoggingProtocol()
        coordinated = CoordinatedCheckpointProtocol()
        r_hydee = run(STENCIL, hydee)
        r_full = run(STENCIL, full)
        r_coord = run(STENCIL, coordinated)
        assert r_coord.stats.logged_bytes == 0
        assert 0 < r_hydee.stats.logged_bytes < r_full.stats.logged_bytes
