"""Integration tests of the hybrid execution mode (simulator.hybrid).

The fast path fast-forwards failure-free epochs analytically and drops to
full discrete-event execution only in a guard window around each failure.
These tests pin its accuracy contract against exact execution:

* application/protocol byte counters are **identical** (not approximately
  equal) in every fault scenario;
* makespan and compute time stay within the 1% acceptance band (measured
  drift is orders of magnitude smaller);
* recovery traffic inside a guard window is byte-identical once event
  timestamps and message ids -- which the fast-forward legitimately shifts
  -- are normalised away;
* specs that do not opt into the mode hash exactly as before, and every
  unsupported configuration falls back to exact execution rather than
  degrading accuracy.

The one deliberate divergence: ``protocol.gc_reclaimed_bytes``.  Exact
runs stop the event loop the moment the last rank finishes, dropping
whichever garbage-collection acknowledgements are still in flight;
fast-forwarded epochs drain those acks deterministically, so the hybrid
counter reports the quiescent value (always >= exact), but the total
bytes accounted for (reclaimed + still-buffered) match exactly.
"""

import dataclasses

import pytest

from repro.scenarios.build import build
from repro.scenarios.spec import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

ITERATIONS = 120
INTERVAL = 8


def scenario(failures=(), iterations=ITERATIONS, interval=INTERVAL, **spec_kwargs):
    return ScenarioSpec(
        name="hybrid-it",
        workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=iterations),
        protocol=ProtocolSpec(
            name="hydee",
            clustering=ClusteringSpec(method="block", num_clusters=4),
            options={
                "checkpoint_interval": interval,
                "checkpoint_size_bytes": 65536,
            },
        ),
        failures=list(failures),
        **spec_kwargs,
    )


def run_both(spec):
    exact_sim = build(spec)
    exact = exact_sim.run()
    hybrid_sim = build(dataclasses.replace(spec, execution="hybrid"))
    hybrid = hybrid_sim.run()
    return (exact_sim, exact), (hybrid_sim, hybrid)


def log_byte_balance(sim):
    protocol = sim.protocol
    buffered = sum(state.log.current_bytes for state in protocol.states.values())
    phantom = sum(
        sum(dests.values()) for dests in protocol._ff_phantom_log.values()
    )
    return (
        sim.stats.logged_bytes
        - protocol.pstats.gc_reclaimed_bytes
        - buffered
        - phantom
    )


FAULT_SCENARIOS = {
    "free": [],
    "timed": [FailureSpec(ranks=(5,), time=0.004)],
    "iteration-triggered": [FailureSpec(ranks=(9,), at_iteration=80)],
    "two-strikes": [
        FailureSpec(ranks=(3,), time=0.003),
        FailureSpec(ranks=(12,), at_iteration=90),
    ],
}


class TestHybridParity:
    @pytest.mark.parametrize("label", sorted(FAULT_SCENARIOS))
    def test_counters_identical_and_makespan_within_band(self, label):
        (exact_sim, exact), (hybrid_sim, hybrid) = run_both(
            scenario(FAULT_SCENARIOS[label])
        )
        assert exact.status == hybrid.status == "completed"
        assert hybrid_sim.hybrid_stats["enabled"] == 1

        assert hybrid.stats.makespan == pytest.approx(exact.stats.makespan, rel=0.01)
        assert hybrid.stats.total_compute_time == pytest.approx(
            exact.stats.total_compute_time, rel=1e-9
        )

        # Volume counters are bit-exact, not merely close.
        for attr in (
            "app_messages",
            "app_bytes",
            "logged_messages",
            "logged_bytes",
            "checkpoints_taken",
            "checkpoint_bytes",
        ):
            assert getattr(hybrid.stats, attr) == getattr(exact.stats, attr), attr

        exact_pstats = exact_sim.protocol.pstats.as_dict()
        hybrid_pstats = hybrid_sim.protocol.pstats.as_dict()
        for key, value in exact_pstats.items():
            if key == "gc_reclaimed_bytes":
                continue
            assert hybrid_pstats[key] == value, f"pstats.{key}"

        # The documented divergence: hybrid drains in-flight gc acks that an
        # exact run drops at termination -- never the other way around.
        # Draining only moves bytes from still-buffered to reclaimed 1:1, so
        # the total both modes account for must match exactly.  (The balance
        # itself is 0 unless a rollback restores already-reclaimed entries,
        # which then count as reclaimed twice -- identically in both modes.)
        assert hybrid_pstats["gc_reclaimed_bytes"] >= exact_pstats["gc_reclaimed_bytes"]
        assert log_byte_balance(hybrid_sim) == log_byte_balance(exact_sim)

    def test_failure_free_run_batches_whole_intervals(self):
        (_, _), (hybrid_sim, _) = run_both(scenario())
        stats = hybrid_sim.hybrid_stats
        assert stats["enabled"] == 1
        assert stats["fallback"] == 0
        assert stats["batched_iterations"] > 0
        assert stats["ff_iterations"] >= stats["batched_iterations"]

    def test_dense_checkpointing_disables_batching_but_stays_exact(self):
        # interval=1 leaves no boundary-free probe window; the per-message
        # fast-forward must carry the epoch alone, bit-exactly.
        (exact_sim, exact), (hybrid_sim, hybrid) = run_both(
            scenario(FAULT_SCENARIOS["timed"], iterations=60, interval=1)
        )
        assert hybrid_sim.hybrid_stats["enabled"] == 1
        assert hybrid_sim.hybrid_stats["batched_iterations"] == 0
        assert hybrid.stats.makespan == pytest.approx(exact.stats.makespan, rel=1e-12)
        assert hybrid.stats.checkpoint_bytes == exact.stats.checkpoint_bytes


class TestGuardWindowTrace:
    def test_recovery_window_events_byte_identical_after_normalisation(self):
        spec = scenario(
            FAULT_SCENARIOS["iteration-triggered"],
            config={"record_trace_events": True},
        )
        (exact_sim, _), (hybrid_sim, _) = run_both(spec)

        def normalised_window(sim):
            report = sim.protocol.recovery_reports[0]
            t0, t1 = report["started_at"], report["completed_at"]
            return [
                (
                    rec.event,
                    rec.source,
                    rec.dest,
                    rec.tag,
                    rec.size_bytes,
                    rec.kind,
                    rec.replayed,
                    rec.inter_cluster,
                    rec.phase,
                    rec.date,
                )
                for rec in sim.trace.records
                if t0 <= rec.time <= t1
            ]

        exact_window = normalised_window(exact_sim)
        hybrid_window = normalised_window(hybrid_sim)
        assert len(exact_window) > 0
        assert hybrid_window == exact_window


class TestSpecHashStability:
    def test_exact_spec_hash_is_unchanged_by_the_execution_field(self):
        spec = scenario(FAULT_SCENARIOS["timed"])
        assert "execution" not in spec.to_dict()
        assert dataclasses.replace(spec, execution="exact").spec_hash() == spec.spec_hash()

    def test_hybrid_opt_in_re_keys_the_spec(self):
        spec = scenario()
        hybrid = dataclasses.replace(spec, execution="hybrid")
        assert hybrid.to_dict()["execution"] == "hybrid"
        assert hybrid.spec_hash() != spec.spec_hash()
        round_trip = ScenarioSpec.from_json(hybrid.to_json())
        assert round_trip.execution == "hybrid"
        assert round_trip.spec_hash() == hybrid.spec_hash()

    def test_config_override_can_force_exact_execution(self):
        spec = dataclasses.replace(
            scenario(), execution="hybrid", config={"execution": "exact"}
        )
        sim = build(spec)
        assert sim.config.execution == "exact"
        result = sim.run()
        assert result.status == "completed"
        assert sim.hybrid_stats is None


class TestFallbacks:
    def assert_fell_back(self, sim, result, reason_fragment):
        assert result.status == "completed"
        assert sim.hybrid_stats["fallback"] == 1
        assert sim.hybrid_stats["enabled"] == 0
        assert reason_fragment in sim.stats.extra["hybrid_fallback_reason"]

    def test_short_runs_fall_back_statically(self):
        spec = dataclasses.replace(scenario(iterations=4), execution="hybrid")
        sim = build(spec)
        result = sim.run()
        self.assert_fell_back(sim, result, "too few iterations")

    def test_strike_inside_warmup_falls_back(self):
        spec = dataclasses.replace(
            scenario([FailureSpec(ranks=(5,), at_iteration=2)]),
            execution="hybrid",
        )
        sim = build(spec)
        result = sim.run()
        self.assert_fell_back(sim, result, "warm-up")

    def test_non_send_deterministic_workload_falls_back(self):
        spec = dataclasses.replace(
            ScenarioSpec(
                name="hybrid-mw",
                workload=WorkloadSpec(
                    kind="master-worker", nprocs=8, iterations=ITERATIONS
                ),
                protocol=ProtocolSpec(
                    name="hydee",
                    clustering=ClusteringSpec(method="block", num_clusters=2),
                    options={
                        "checkpoint_interval": INTERVAL,
                        "enforce_send_determinism": False,
                    },
                ),
            ),
            execution="hybrid",
        )
        sim = build(spec)
        result = sim.run()
        self.assert_fell_back(sim, result, "master-worker")

    def test_fallback_matches_exact_execution_exactly(self):
        base = scenario(iterations=4)
        exact = build(base).run()
        hybrid = build(dataclasses.replace(base, execution="hybrid")).run()
        assert hybrid.stats.makespan == exact.stats.makespan
        assert hybrid.stats.app_messages == exact.stats.app_messages

    def test_event_tracing_disables_batching_only(self):
        spec = dataclasses.replace(
            scenario(config={"record_trace_events": True}), execution="hybrid"
        )
        sim = build(spec)
        result = sim.run()
        assert result.status == "completed"
        assert sim.hybrid_stats["enabled"] == 1
        assert sim.hybrid_stats["fallback"] == 0
        assert sim.hybrid_stats["batched_iterations"] == 0
        assert sim.hybrid_stats["ff_iterations"] > 0


class TestMonteCarloAggregates:
    def test_hybrid_campaign_matches_exact_aggregates_within_band(self):
        from repro.faults.montecarlo import run_montecarlo
        from repro.faults.spec import FaultModelSpec

        base = scenario()
        makespan = build(base).run().stats.makespan
        spec = dataclasses.replace(
            base,
            fault_model=FaultModelSpec(
                distribution="exponential",
                seed=11,
                params={"mtbf_s": makespan * 16 * 1.5},
                horizon_s=makespan,
                max_failures=2,
            ),
        )
        exact = run_montecarlo(spec, replicas=6, execution="exact")
        hybrid = run_montecarlo(spec, replicas=6, execution="hybrid")
        assert exact.completed_replicas == hybrid.completed_replicas == 6
        for path in ("faults.sim.makespan.mean", "faults.sim.total_compute_time.mean"):
            assert hybrid.metric(path) == pytest.approx(
                exact.metric(path), rel=0.01
            ), path
        assert hybrid.metric("faults.sim.app_bytes.mean") == exact.metric(
            "faults.sim.app_bytes.mean"
        )


class TestCalibrationCache:
    """Shared warm-up calibration (simulator.calibration).

    A cached rate model must be a pure fast path: replicas that read it
    skip the DES warm-up but stay bit-identical on every volume counter
    and keep the same makespan accuracy -- the per-epoch probes re-verify
    the model against real iterations regardless of where it came from.
    """

    def fault_model(self, makespan):
        from repro.faults.spec import FaultModelSpec

        return FaultModelSpec(
            distribution="exponential",
            seed=11,
            params={"mtbf_s": makespan * 16 * 1.5},
            horizon_s=makespan,
            max_failures=2,
        )

    def test_cached_model_skips_warmup_and_stays_bit_exact(self):
        from repro.simulator import calibration

        spec = dataclasses.replace(scenario(), execution="hybrid")
        exact = build(dataclasses.replace(spec, execution="exact")).run()
        cold_sim = build(spec)
        cold = cold_sim.run()
        assert cold_sim.hybrid_stats["calibration_cached"] == 0
        assert cold_sim.hybrid_calibration is not None

        cache = calibration.CalibrationCache()
        cache.put(spec.calibration_key(), cold_sim.hybrid_calibration)
        with calibration.activated(cache):
            warm_sim = build(spec)
            warm = warm_sim.run()
        assert warm_sim.hybrid_stats["calibration_cached"] == 1
        assert warm_sim.hybrid_stats["warmup_iterations"] == 0
        assert warm_sim.hybrid_stats["fallback"] == 0
        # The whole pre-model span is fast-forwarded instead of warmed up.
        assert warm_sim.hybrid_stats["des_iterations"] < cold_sim.hybrid_stats[
            "des_iterations"
        ]
        assert warm.stats.app_messages == exact.stats.app_messages
        assert warm.stats.app_bytes == exact.stats.app_bytes
        assert warm.stats.makespan == pytest.approx(exact.stats.makespan, rel=0.01)
        # Cold and warm replicas agree with each other far tighter than the
        # acceptance band: both timelines come from the same model.
        assert warm.stats.makespan == pytest.approx(cold.stats.makespan, rel=1e-9)

    def test_calibration_key_ignores_failures_but_not_timing_fields(self):
        base = scenario()
        assert (
            dataclasses.replace(base, execution="hybrid").calibration_key()
            == base.calibration_key()
        )
        assert (
            scenario(FAULT_SCENARIOS["timed"]).calibration_key()
            == base.calibration_key()
        )
        assert scenario(interval=4).calibration_key() != base.calibration_key()
        assert scenario(iterations=60).calibration_key() != base.calibration_key()

    def test_stale_entry_for_same_key_degrades_to_probe_guard(self):
        """A cache entry whose shape no longer matches the run is ignored."""
        from repro.simulator import calibration

        spec = dataclasses.replace(scenario(), execution="hybrid")
        cache = calibration.CalibrationCache()
        cache.put(spec.calibration_key(), {"model": {"bogus": 1}, "warmup": 2})
        with calibration.activated(cache):
            sim = build(spec)
            result = sim.run()
        assert result.status == "completed"
        assert sim.hybrid_stats["calibration_cached"] == 0
        assert sim.hybrid_stats["warmup_iterations"] > 0

    def test_montecarlo_prewarm_writes_sidecar_and_keeps_byte_identity(self, tmp_path):
        from repro.campaign.store import ResultsStore
        from repro.faults.montecarlo import run_montecarlo

        base = scenario()
        makespan = build(base).run().stats.makespan
        spec = dataclasses.replace(base, fault_model=self.fault_model(makespan))
        serial_store = ResultsStore(str(tmp_path / "serial.json"))
        parallel_store = ResultsStore(str(tmp_path / "parallel.json"))
        serial = run_montecarlo(spec, replicas=6, workers=1, store=serial_store)
        parallel = run_montecarlo(spec, replicas=6, workers=3, store=parallel_store)
        assert (tmp_path / "serial.calibration.json").exists()
        assert (tmp_path / "parallel.calibration.json").exists()
        assert (tmp_path / "serial.json").read_bytes() == (
            tmp_path / "parallel.json"
        ).read_bytes()
        # Every replica read the pre-warmed entry; none re-ran the warm-up,
        # and the aggregate surfaces that as a queryable faults.* metric.
        assert serial.metric("faults.sim.hybrid.calibration_cached.mean") == 1.0
        assert serial.metric("faults.sim.hybrid.warmup_iterations.mean") == 0.0
        assert serial.metric("faults.sim.hybrid.fallback.mean") == 0.0
        assert parallel.metric("faults.sim.hybrid.calibration_cached.mean") == 1.0

    def test_concurrent_cache_saves_merge_entries(self, tmp_path):
        from repro.simulator.calibration import CalibrationCache

        path = str(tmp_path / "calibration.json")
        a = CalibrationCache(path)
        b = CalibrationCache(path)
        a.put("key-a", {"model": {}, "warmup": 3})
        b.put("key-b", {"model": {}, "warmup": 4})
        a.save()
        b.save()
        merged = CalibrationCache(path)
        assert merged.get("key-a") == {"model": {}, "warmup": 3}
        assert merged.get("key-b") == {"model": {}, "warmup": 4}
