"""Integration tests for HydEE recovery (Algorithms 2-4, Theorems 1-2).

Every scenario injects fail-stop failures, lets HydEE recover, and checks the
full battery of executable paper invariants: failure containment, identical
final results, send-determinism of the re-execution, and (on the reference
trace) the phase lemmas.
"""

import pytest

from repro import HydEEConfig, HydEEProtocol, Simulation
from repro.core.invariants import check_all_recovery_invariants
from repro.errors import ProtocolError
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.workloads import (
    PipelineApplication,
    RingApplication,
    Stencil2DApplication,
    make_nas_application,
)

CLUSTERS16 = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]


def reference_run(app_factory):
    app = app_factory()
    return Simulation(app, nprocs=app.nprocs).run()


def recovery_run(app_factory, failure_events, checkpoint_interval=2, clusters=CLUSTERS16,
                 **config_kwargs):
    app = app_factory()
    protocol = HydEEProtocol(
        HydEEConfig(clusters=clusters, checkpoint_interval=checkpoint_interval,
                    checkpoint_size_bytes=16 * 1024, **config_kwargs)
    )
    injector = FailureInjector(failure_events)
    result = Simulation(app, nprocs=app.nprocs, protocol=protocol, failures=injector).run()
    return result, protocol


STENCIL = lambda: Stencil2DApplication(nprocs=16, iterations=8)


class TestSingleFailure:
    @pytest.mark.parametrize("failed_rank", [0, 5, 10, 15])
    def test_failure_of_any_rank_is_contained_and_correct(self, failed_rank):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[failed_rank], at_iteration=5)]
        )
        summary = check_all_recovery_invariants(reference, result, protocol, [failed_rank])
        assert summary["containment"]["fraction"] == pytest.approx(0.25)
        assert result.stats.ranks_rolled_back == 4

    @pytest.mark.parametrize("fail_iteration", [1, 3, 4, 6, 8])
    def test_failure_at_various_points_of_the_execution(self, fail_iteration):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[9], at_iteration=fail_iteration)]
        )
        check_all_recovery_invariants(reference, result, protocol, [9])

    @pytest.mark.parametrize("checkpoint_interval", [1, 2, 3, 5])
    def test_various_checkpoint_intervals(self, checkpoint_interval):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL,
            [FailureEvent(ranks=[6], at_iteration=6)],
            checkpoint_interval=checkpoint_interval,
        )
        check_all_recovery_invariants(reference, result, protocol, [6])

    def test_failure_before_any_checkpoint_restarts_cluster_from_scratch(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[2], at_iteration=1)], checkpoint_interval=4
        )
        check_all_recovery_invariants(reference, result, protocol, [2])
        # The cluster restarted from iteration 0 (no checkpoint existed yet).
        assert protocol.recovery_reports[0]["rolled_back_ranks"] == [0, 1, 2, 3]

    def test_time_triggered_failure(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(STENCIL, [FailureEvent(ranks=[13], time=250e-6)])
        check_all_recovery_invariants(reference, result, protocol, [13])

    def test_recovery_replays_only_inter_cluster_messages(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(STENCIL, [FailureEvent(ranks=[5], at_iteration=5)])
        check_all_recovery_invariants(reference, result, protocol, [5])
        assert protocol.pstats.replayed_messages > 0
        assert protocol.pstats.replayed_messages <= protocol.pstats.logged_messages
        assert protocol.pstats.suppressed_orphans > 0
        assert result.stats.recovery_time > 0.0

    def test_recovery_report_contents(self):
        result, protocol = recovery_run(STENCIL, [FailureEvent(ranks=[5], at_iteration=5)])
        assert len(protocol.recovery_reports) == 1
        report = protocol.recovery_reports[0]
        assert report["rolled_back_ranks"] == [4, 5, 6, 7]
        assert report["orphan_messages"] == protocol.pstats.suppressed_orphans
        assert report["completed_at"] >= report["started_at"]


class TestMultipleFailures:
    def test_concurrent_failures_in_two_clusters(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[1, 14], at_iteration=5)]
        )
        summary = check_all_recovery_invariants(reference, result, protocol, [1, 14])
        assert result.stats.ranks_rolled_back == 8
        assert summary["containment"]["fraction"] == pytest.approx(0.5)

    def test_whole_cluster_fails_at_once(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[8, 9, 10, 11], at_iteration=5)]
        )
        check_all_recovery_invariants(reference, result, protocol, [8, 9, 10, 11])
        assert result.stats.ranks_rolled_back == 4

    def test_three_cluster_concurrent_failure(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[0, 6, 11], at_iteration=4)]
        )
        check_all_recovery_invariants(reference, result, protocol, [0, 6, 11])
        assert result.stats.ranks_rolled_back == 12

    def test_sequential_failures_with_recovery_in_between(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL,
            [
                FailureEvent(ranks=[5], at_iteration=3),
                FailureEvent(ranks=[10], at_iteration=7, rank_trigger=10),
            ],
        )
        # Both recoveries completed; total restarts counted per failure.
        assert len(protocol.recovery_reports) == 2
        assert result.rank_results == reference.rank_results
        assert result.stats.ranks_rolled_back == 8

    def test_failure_during_recovery_is_rejected_explicitly(self):
        # Two failures 2 microseconds apart: the second lands inside the first
        # recovery session and must be reported as unsupported rather than
        # silently corrupting state.
        app = Stencil2DApplication(nprocs=16, iterations=8)
        protocol = HydEEProtocol(
            HydEEConfig(clusters=CLUSTERS16, checkpoint_interval=2,
                        checkpoint_size_bytes=16 * 1024)
        )
        injector = FailureInjector(
            [FailureEvent(ranks=[5], time=200e-6), FailureEvent(ranks=[10], time=202e-6)]
        )
        with pytest.raises(ProtocolError):
            Simulation(app, nprocs=16, protocol=protocol, failures=injector).run()


class TestOtherWorkloadsAndTopologies:
    @pytest.mark.parametrize(
        "factory,clusters,failed",
        [
            (lambda: RingApplication(nprocs=16, iterations=6), CLUSTERS16, 7),
            (lambda: PipelineApplication(nprocs=16, iterations=5), CLUSTERS16, 11),
            (
                lambda: make_nas_application("cg", nprocs=16, iterations=4, message_scale=0.01),
                CLUSTERS16,
                6,
            ),
            (
                lambda: make_nas_application("bt", nprocs=16, iterations=4, message_scale=0.01),
                CLUSTERS16,
                3,
            ),
            (
                lambda: make_nas_application("ft", nprocs=16, iterations=3, message_scale=0.01),
                [[r for r in range(8)], [r for r in range(8, 16)]],
                12,
            ),
        ],
        ids=["ring", "pipeline", "cg", "bt", "ft-2clusters"],
    )
    def test_recovery_across_workloads(self, factory, clusters, failed):
        reference = reference_run(factory)
        result, protocol = recovery_run(
            factory, [FailureEvent(ranks=[failed], at_iteration=3)], clusters=clusters
        )
        check_all_recovery_invariants(reference, result, protocol, [failed])

    def test_unbalanced_clusters(self):
        clusters = [[0], [1, 2, 3, 4, 5], [6, 7, 8, 9], [10, 11, 12, 13, 14, 15]]
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[0], at_iteration=5)], clusters=clusters
        )
        check_all_recovery_invariants(reference, result, protocol, [0])
        assert result.stats.ranks_rolled_back == 1

    def test_single_cluster_degenerates_to_global_rollback(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL, [FailureEvent(ranks=[5], at_iteration=5)], clusters=None
        )
        assert result.rank_results == reference.rank_results
        assert result.stats.ranks_rolled_back == 16
        assert protocol.pstats.logged_messages == 0

    def test_log_all_configuration_still_recovers(self):
        reference = reference_run(STENCIL)
        result, protocol = recovery_run(
            STENCIL,
            [FailureEvent(ranks=[5], at_iteration=5)],
            log_all_messages=True,
        )
        check_all_recovery_invariants(reference, result, protocol, [5])

    def test_no_event_logging_anywhere(self):
        """The headline claim: recovery succeeds although no determinant was
        ever recorded (the protocol has no determinant structure at all)."""
        result, protocol = recovery_run(STENCIL, [FailureEvent(ranks=[5], at_iteration=5)])
        assert result.completed
        assert protocol.pstats.determinants_logged == 0
