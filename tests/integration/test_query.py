"""Integration tests for the results query layer and store migration:

* v1 store files load through the migrator and their migrated records are
  byte-identical to records a fresh v2 run of the same specs produces,
* unknown store versions fail with a clear error,
* where/select/pivot are deterministic (serial vs --workers N stores are
  byte-identical and query output over them matches),
* spec hashes of every preset scenario are pinned to their pre-redesign
  values (cache keys must survive the results API redesign),
* the ``repro-campaign query`` CLI reproduces the Table I summary from a
  v1 store file.
"""

import json
import os
import shutil

import pytest

from repro.campaign import ResultsStore, run_campaign, run_spec
from repro.campaign.cli import main as campaign_main
from repro.campaign.store import STORE_VERSION
from repro.errors import ConfigurationError
from repro.results import ResultSet, RunResult
from repro.scenarios import ScenarioSpec

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "data")
V1_STORE = os.path.join(DATA_DIR, "v1_store.json")
PINNED_HASHES = os.path.join(DATA_DIR, "pinned_spec_hashes.json")


def canonical(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class TestV1Migration:
    def test_fixture_is_a_version1_store(self):
        with open(V1_STORE, encoding="utf-8") as fh:
            raw = json.load(fh)
        assert raw["version"] == 1
        # v1 simulate records flattened stats with a pstats_ prefix in extra.
        simulate = [r for r in raw["records"].values() if r["analysis"] == "simulate"]
        assert any("pstats_logged_messages" in r["result"]["stats"]["extra"]
                   for r in simulate)

    def test_v1_store_loads_migrated(self):
        store = ResultsStore(V1_STORE)
        assert store.loaded_version == 1 and store.migrated
        for record in store.records().values():
            run = RunResult.from_record(record)   # strict: v2 layout required
            assert run.status == "completed"

    def test_migrated_records_match_fresh_v2_runs(self):
        """The migrator is value-preserving: re-running every fixture spec
        under the v2 jobs reproduces the migrated records byte for byte
        (so migrated caches keep being valid caches)."""
        store = ResultsStore(V1_STORE)
        for spec_hash, record in sorted(store.records().items()):
            spec = ScenarioSpec.from_dict(record["spec"])
            assert spec.spec_hash() == spec_hash
            fresh, _ = run_spec(spec)
            assert canonical(fresh) == canonical(record), spec.name

    def test_migrated_store_saves_as_v2_and_is_stable(self, tmp_path):
        path = tmp_path / "migrated.json"
        shutil.copy(V1_STORE, path)
        store = ResultsStore(str(path))
        assert store.migrated
        store.save()
        first = path.read_bytes()
        data = json.loads(first)
        assert data["version"] == STORE_VERSION
        # Loading + saving the migrated file again is a fixed point.
        reloaded = ResultsStore(str(path))
        assert not reloaded.migrated
        reloaded.save()
        assert path.read_bytes() == first

    def test_unknown_store_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "records": {}}))
        with pytest.raises(ValueError, match="unsupported results-store version"):
            ResultsStore(str(path))

    def test_not_a_store_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a campaign results store"):
            ResultsStore(str(path))


class TestPinnedSpecHashes:
    def test_preset_scenario_hashes_unchanged(self):
        """Cache keys must be byte-identical to their pre-redesign values."""
        from repro.analysis.congestion import congestion_specs
        from repro.analysis.containment import containment_specs
        from repro.analysis.netpipe_analysis import netpipe_specs
        from repro.analysis.overhead import overhead_specs
        from repro.analysis.table1 import cluster_sweep_spec, table1_spec
        from repro.experiments.ablation_piggyback import piggyback_spec
        from repro.workloads.nas import NAS_BENCHMARKS

        with open(PINNED_HASHES, encoding="utf-8") as fh:
            pinned = json.load(fh)

        current = {}
        for name in sorted(NAS_BENCHMARKS):
            current[f"table1:{name}"] = table1_spec(name).spec_hash()
            current[f"cluster-sweep:{name}"] = cluster_sweep_spec(name).spec_hash()
        for spec in netpipe_specs():
            current[spec.name] = spec.spec_hash()
        for name in sorted(NAS_BENCHMARKS):
            for spec in overhead_specs(name):
                current[spec.name] = spec.spec_hash()
        for spec in containment_specs():
            current[spec.name] = spec.spec_hash()
        for spec in congestion_specs():
            current[spec.name] = spec.spec_hash()
        current[piggyback_spec().name] = piggyback_spec().spec_hash()

        assert current == pinned


@pytest.fixture(scope="module")
def small_campaign(tmp_path_factory):
    """A small mixed campaign run serially and with workers into stores."""
    from repro.analysis.table1 import table1_spec
    from repro.scenarios import ScenarioSpec, WorkloadSpec, sweep

    base = ScenarioSpec(
        name="query-grid",
        workload=WorkloadSpec(kind="stencil2d", nprocs=8, iterations=3),
    )
    specs = sweep(
        base,
        {
            "workload.kind": ["stencil2d", "ring"],
            "protocol.name": ["none", "hydee-log-all"],
        },
    ) + [table1_spec("cg", nprocs=64)]
    tmp = tmp_path_factory.mktemp("query-stores")
    serial_store = ResultsStore(str(tmp / "serial.json"))
    parallel_store = ResultsStore(str(tmp / "parallel.json"))
    run_campaign(specs, workers=1, store=serial_store)
    run_campaign(specs, workers=2, store=parallel_store)
    return tmp


class TestQueryDeterminism:
    def test_serial_and_parallel_v2_stores_byte_identical(self, small_campaign):
        serial = (small_campaign / "serial.json").read_bytes()
        parallel = (small_campaign / "parallel.json").read_bytes()
        assert serial == parallel
        assert json.loads(serial)["version"] == STORE_VERSION

    def test_where_select_pivot_identical_across_stores(self, small_campaign):
        serial = ResultSet.from_store(str(small_campaign / "serial.json"))
        parallel = ResultSet.from_store(str(small_campaign / "parallel.json"))
        for resultset in (serial, parallel):
            assert len(resultset) == 5
        assert canonical(serial.select("name", "sim.makespan")) == \
            canonical(parallel.select("name", "sim.makespan"))
        assert canonical(serial.pivot("workload", "protocol", "sim.makespan")) == \
            canonical(parallel.pivot("workload", "protocol", "sim.makespan"))

    def test_where_filters_on_spec_fields_and_metrics(self, small_campaign):
        resultset = ResultSet.from_store(str(small_campaign / "serial.json"))
        assert len(resultset.where(workload="ring")) == 2
        assert len(resultset.where(protocol="hydee-log-all")) == 2
        assert len(resultset.where(workload="ring", protocol="none")) == 1
        assert len(resultset.where(**{"sim.failures_injected": 0})) == 4
        assert len(resultset.where(analysis="table1-row")) == 1
        assert len(resultset.where(workload="no-such-workload")) == 0

    def test_overhead_vs_and_speedup(self, small_campaign):
        resultset = ResultSet.from_store(str(small_campaign / "serial.json"))
        sims = resultset.where(analysis="simulate")
        pairs = sims.overhead_vs(
            metric="sim.makespan", index=("workload.kind",), protocol="none"
        )
        ratios = {(run.field("workload"), run.field("protocol")): ratio
                  for run, ratio in pairs}
        assert ratios[("stencil2d", "none")] == 1.0
        assert ratios[("stencil2d", "hydee-log-all")] > 1.0
        speedups = dict(
            (run.name, v) for run, v in sims.speedup(
                metric="sim.makespan", index=("workload.kind",), protocol="none"
            )
        )
        for (workload, protocol), ratio in ratios.items():
            if protocol == "hydee-log-all":
                assert any(abs(v - 1.0 / ratio) < 1e-12 for v in speedups.values())

    def test_missing_baseline_is_an_error(self, small_campaign):
        resultset = ResultSet.from_store(str(small_campaign / "serial.json"))
        with pytest.raises(ConfigurationError, match="no baseline"):
            resultset.overhead_vs(metric="sim.makespan", protocol="coordinated")


class TestQueryCli:
    def test_table1_summary_from_v1_store(self, tmp_path, capsys):
        """Acceptance: the CLI reproduces Table I from a v1 store file."""
        path = tmp_path / "v1.json"
        shutil.copy(V1_STORE, path)
        assert campaign_main(["query", str(path), "--table", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "CG" in out

    def test_migrate_flag_rewrites_file(self, tmp_path, capsys):
        path = tmp_path / "v1.json"
        shutil.copy(V1_STORE, path)
        assert campaign_main(["query", str(path), "--migrate"]) == 0
        assert json.loads(path.read_text())["version"] == STORE_VERSION

    def test_where_select_and_formats(self, tmp_path, capsys):
        path = tmp_path / "v1.json"
        shutil.copy(V1_STORE, path)
        assert campaign_main([
            "query", str(path), "--where", "tags.experiment=congestion-recovery",
            "--select", "name", "sim.makespan", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4
        assert all(isinstance(r["sim.makespan"], float) for r in rows)
        assert campaign_main([
            "query", str(path), "--table", "congestion", "--format", "csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("protocol,oversubscription")

    def test_unknown_table_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / "v1.json"
        shutil.copy(V1_STORE, path)
        assert campaign_main(["query", str(path), "--table", "nope"]) == 2
        assert "unknown table" in capsys.readouterr().err
