"""Unit tests for the baseline protocols, registry, analytic model and reporting."""

import pytest

from repro import (
    CoordinatedCheckpointProtocol,
    FullMessageLoggingProtocol,
    HybridEventLoggingProtocol,
    HydEEConfig,
    HydEEProtocol,
    NoFaultToleranceProtocol,
    Simulation,
    available_protocols,
    make_protocol,
)
from repro.analysis.perf_model import (
    analytic_pingpong_series,
    iteration_overhead_estimate,
    message_cost,
)
from repro.analysis.reporting import format_dict_table, format_series, format_table, percent
from repro.errors import ConfigurationError, ProtocolError
from repro.ftprotocols.base import normalize_clusters
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.network import MyrinetMXModel, PiggybackPolicy
from repro.workloads import MasterWorkerApplication, RingApplication


class TestNormalizeClusters:
    def test_none_means_single_cluster(self):
        assert normalize_clusters(None, 4) == [[0, 1, 2, 3]]

    def test_partition_validation(self):
        with pytest.raises(ConfigurationError):
            normalize_clusters([[0, 1], [1, 2]], 3)          # overlap
        with pytest.raises(ConfigurationError):
            normalize_clusters([[0, 1]], 3)                   # missing rank
        with pytest.raises(ConfigurationError):
            normalize_clusters([[0, 1], []], 2)               # empty cluster
        with pytest.raises(ConfigurationError):
            normalize_clusters([[0, 5]], 2)                   # out of range

    def test_sorted_output(self):
        assert normalize_clusters([[3, 1], [0, 2]], 4) == [[1, 3], [0, 2]]


class TestRegistry:
    def test_available_protocols(self):
        names = available_protocols()
        assert {"hydee", "coordinated", "message-logging", "native"} <= set(names)

    def test_make_protocol_instances(self):
        assert isinstance(make_protocol("native"), NoFaultToleranceProtocol)
        assert isinstance(make_protocol("coordinated"), CoordinatedCheckpointProtocol)
        assert isinstance(make_protocol("message-logging"), FullMessageLoggingProtocol)
        assert isinstance(make_protocol("hybrid-event-logging"), HybridEventLoggingProtocol)
        hydee = make_protocol("hydee", clusters=[[0, 1], [2, 3]])
        assert isinstance(hydee, HydEEProtocol)
        log_all = make_protocol("hydee-log-all")
        assert log_all.config.log_all_messages is True

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            make_protocol("unknown-protocol")


class TestNoFaultTolerance:
    def test_failure_aborts_execution(self):
        app = RingApplication(nprocs=4, iterations=4)
        injector = FailureInjector([FailureEvent(ranks=[2], at_iteration=2)])
        sim = Simulation(app, nprocs=4, protocol=NoFaultToleranceProtocol(), failures=injector)
        with pytest.raises(ProtocolError):
            sim.run()

    def test_failure_can_be_tolerated_for_reporting(self):
        app = RingApplication(nprocs=4, iterations=2)
        protocol = NoFaultToleranceProtocol(abort_on_failure=False)
        injector = FailureInjector([FailureEvent(ranks=[2], time=1.0)])
        # The failure fires after completion here, so the run still succeeds.
        result = Simulation(app, nprocs=4, protocol=protocol, failures=injector).run()
        assert result.completed


class TestHydEEConstruction:
    def test_config_or_kwargs_but_not_both(self):
        with pytest.raises(ConfigurationError):
            HydEEProtocol(HydEEConfig(), checkpoint_interval=2)

    def test_rejects_non_send_deterministic_application(self):
        app = MasterWorkerApplication(nprocs=4)
        protocol = HydEEProtocol(HydEEConfig(clusters=[[0, 1], [2, 3]]))
        with pytest.raises(ConfigurationError):
            Simulation(app, nprocs=4, protocol=protocol)

    def test_enforcement_can_be_disabled(self):
        app = MasterWorkerApplication(nprocs=4, tasks_per_worker=1)
        protocol = HydEEProtocol(
            HydEEConfig(clusters=[[0, 1], [2, 3]], enforce_send_determinism=False)
        )
        result = Simulation(app, nprocs=4, protocol=protocol).run()
        assert result.completed

    def test_cluster_helpers(self):
        protocol = HydEEProtocol(HydEEConfig(clusters=[[0, 1], [2, 3]]))
        Simulation(RingApplication(nprocs=4, iterations=1), nprocs=4, protocol=protocol)
        assert protocol.cluster_of(0) == protocol.cluster_of(1)
        assert protocol.is_inter_cluster(1, 2)
        assert not protocol.is_inter_cluster(2, 3)
        assert protocol.ranks_outside_cluster(0) == [2, 3]
        assert protocol.num_clusters == 2


class TestPerfModel:
    def test_message_cost_logging_adds_memcpy_only(self):
        network = MyrinetMXModel()
        without = message_cost(network, 4096, logging=False)
        with_log = message_cost(network, 4096, logging=True)
        assert with_log.total_latency_s > without.total_latency_s
        assert with_log.logging_latency_s == pytest.approx(network.memcpy_time(4096))

    def test_piggyback_peak_at_plateau_boundary(self):
        network = MyrinetMXModel()
        # 32-byte payload + 12 piggyback bytes crosses the 3.3us -> 4us step.
        at_boundary = message_cost(network, 32, piggyback_bytes=12,
                                   policy=PiggybackPolicy.INLINE)
        far_from_boundary = message_cost(network, 8, piggyback_bytes=12,
                                         policy=PiggybackPolicy.INLINE)
        assert at_boundary.overhead_fraction > far_from_boundary.overhead_fraction

    def test_analytic_series_shape(self):
        series = analytic_pingpong_series(sizes=[1, 32, 1024, 1 << 20])
        assert len(series["sizes"]) == 4
        # Overheads are reported as non-positive "reduction" percentages.
        assert all(v <= 0.0 for v in series["latency_reduction_logging_pct"])
        # Large messages see (almost) no degradation.
        assert series["latency_reduction_logging_pct"][-1] > -2.5
        # Logging never helps latency.
        for no_log, log in zip(series["latency_reduction_no_logging_pct"],
                               series["latency_reduction_logging_pct"]):
            assert log <= no_log + 1e-9

    def test_iteration_overhead_estimate_small(self):
        network = MyrinetMXModel()
        estimate = iteration_overhead_estimate(
            network,
            messages_per_rank=4,
            message_bytes=1 << 20,
            logged_fraction=0.2,
            compute_seconds=5e-3,
        )
        assert 1.0 <= estimate < 1.05


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], ["xx", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]

    def test_format_dict_table_selects_columns(self):
        rows = [{"x": 1, "y": 2, "z": 3}]
        text = format_dict_table(rows, columns=["z", "x"])
        assert "z" in text and "x" in text and "y" not in text.splitlines()[0]

    def test_format_series_and_percent(self):
        text = format_series("size", [1, 2], {"s": [10, 20]}, title="t")
        assert text.startswith("t")
        assert percent(110.0, 100.0) == pytest.approx(10.0)
        assert percent(5.0, 0.0) == 0.0
