"""Unit tests for the topology layer: routing, contention, placement, facade."""

import pytest

from repro.errors import ClusteringError, ConfigurationError
from repro.clustering.placement import (
    aligned_clusters,
    misaligned_clusters,
    placement_alignment,
)
from repro.simulator.network import MyrinetMXModel, RoutedNetworkModel
from repro.topology import (
    TIER_INTER_CLUSTER,
    TIER_INTRA_CLUSTER,
    TIER_NODE_LOCAL,
    ContentionModel,
    Link,
    Topology,
    available_presets,
    build_topology,
    flat_topology,
    hierarchical_topology,
)


def _two_cluster_topology():
    """16 ranks, 4 per node, 2 nodes per cluster -> 2 physical clusters."""
    return hierarchical_topology(16, ranks_per_node=4, nodes_per_cluster=2)


class TestTopologyLayout:
    def test_rank_placement(self):
        topo = _two_cluster_topology()
        assert topo.nprocs == 16
        assert topo.num_nodes == 4
        assert topo.num_clusters == 2
        assert topo.node_of_rank[0] == topo.node_of_rank[3] == 0
        assert topo.cluster_of_rank(0) == 0
        assert topo.cluster_of_rank(15) == 1
        assert topo.ranks_by_cluster() == [list(range(8)), list(range(8, 16))]

    def test_partial_last_node(self):
        topo = hierarchical_topology(10, ranks_per_node=4, nodes_per_cluster=2)
        assert topo.num_nodes == 3
        assert topo.ranks_by_node()[2] == [8, 9]

    def test_flat_topology_has_no_links(self):
        topo = flat_topology(8)
        assert not topo.has_shared_links
        assert topo.route(0, 7) == ()
        assert topo.route(3, 3) == ()

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            flat_topology(0)
        with pytest.raises(ConfigurationError):
            hierarchical_topology(8, ranks_per_node=0)
        with pytest.raises(ConfigurationError):
            Link("l", "no-such-tier", 1e-6, 1e9)
        with pytest.raises(ConfigurationError):
            Link("l", TIER_INTER_CLUSTER, 1e-6, 1e9, oversubscription=0.5)

    def test_partial_link_families_rejected_at_construction(self):
        # Routing indexes link families by node/cluster id; an incomplete
        # family must fail at build time, not as an IndexError mid-run.
        local = Link("n0:local", TIER_NODE_LOCAL, 1e-6, 1e9)
        with pytest.raises(ConfigurationError):
            Topology(
                name="partial",
                node_of_rank=[0, 0, 1, 1],
                cluster_of_node=[0, 0],
                node_local=[local],  # one local link for two nodes, no up/down
            )


class TestRouting:
    def test_same_node_uses_local_link(self):
        topo = _two_cluster_topology()
        path = topo.route(0, 3)
        assert [link.tier for link in path] == [TIER_NODE_LOCAL]

    def test_same_cluster_uses_node_up_down(self):
        topo = _two_cluster_topology()
        path = topo.route(0, 4)  # node 0 -> node 1, same cluster
        assert [link.tier for link in path] == [TIER_INTRA_CLUSTER] * 2
        assert path[0].name == "node0:up"
        assert path[1].name == "node1:down"

    def test_inter_cluster_path_crosses_fabric(self):
        topo = _two_cluster_topology()
        path = topo.route(0, 15)
        assert [link.tier for link in path] == [
            TIER_INTRA_CLUSTER,
            TIER_INTER_CLUSTER,
            TIER_INTER_CLUSTER,
            TIER_INTRA_CLUSTER,
        ]

    def test_routes_are_cached_and_directional(self):
        topo = _two_cluster_topology()
        assert topo.route(0, 15) is topo.route(0, 15)
        forward = [link.name for link in topo.route(0, 15)]
        backward = [link.name for link in topo.route(15, 0)]
        assert forward != backward

    def test_oversubscription_divides_effective_bandwidth(self):
        topo = hierarchical_topology(
            8, ranks_per_node=2, nodes_per_cluster=2, oversubscription=4.0
        )
        inter = topo.route(0, 7)[1]
        assert inter.tier == TIER_INTER_CLUSTER
        assert inter.effective_bandwidth_bytes_per_s == pytest.approx(
            inter.bandwidth_bytes_per_s / 4.0
        )


class TestContentionModel:
    def _link(self, name="l0", bw=1e9, latency=1e-6, oversub=1.0):
        return Link(name, TIER_INTER_CLUSTER, latency, bw, oversub)

    def test_uncontended_transfer(self):
        model = ContentionModel()
        link = self._link()
        finish, waited = model.reserve([link], 1000, start=0.0)
        assert waited == 0.0
        assert finish == pytest.approx(1000 / 1e9 + 1e-6)

    def test_concurrent_transfers_serialize_fifo(self):
        model = ContentionModel()
        link = self._link()
        finish1, wait1 = model.reserve([link], 1000, start=0.0)
        finish2, wait2 = model.reserve([link], 1000, start=0.0)
        assert wait1 == 0.0
        assert wait2 == pytest.approx(1000 / 1e9)
        assert finish2 == pytest.approx(finish1 + 1000 / 1e9)

    def test_disjoint_links_do_not_contend(self):
        model = ContentionModel()
        a, b = self._link("a"), self._link("b")
        _, wait_a = model.reserve([a], 1000, start=0.0)
        _, wait_b = model.reserve([b], 1000, start=0.0)
        assert wait_a == wait_b == 0.0

    def test_reservation_is_deterministic(self):
        def run():
            model = ContentionModel()
            link = self._link(oversub=3.0)
            return [model.reserve([link], 512 * (i + 1), start=0.0) for i in range(10)]

        assert run() == run()

    def test_usage_counters_and_reset(self):
        model = ContentionModel()
        link = self._link()
        model.reserve([link], 1000, start=0.0)
        model.reserve([link], 1000, start=0.0)
        stats = model.link_stats(makespan=1.0)
        assert stats["l0"]["messages"] == 2
        assert stats["l0"]["bytes"] == 2000
        assert stats["l0"]["utilization"] == pytest.approx(2e-6)
        tiers = model.tier_stats()
        assert tiers[TIER_INTER_CLUSTER]["messages"] == 2
        model.reset()
        assert model.link_stats() == {}
        assert model.total_wait_s == 0.0


class TestRoutedNetworkModel:
    def test_flat_topology_matches_base_model_exactly(self):
        base = MyrinetMXModel()
        routed = RoutedNetworkModel(base, flat_topology(4))
        for wire in (1, 64, 1024, 65536, 1 << 20):
            arrival, waited = routed.routed_arrival(0, 3, wire, start=5.0)
            assert arrival == 5.0 + base.transfer_time(wire)
            assert waited == 0.0

    def test_delegates_base_model_interface(self):
        base = MyrinetMXModel()
        routed = RoutedNetworkModel(base, flat_topology(4))
        assert routed.send_overhead_s == base.send_overhead_s
        assert routed.latency(8) == base.latency(8)
        assert routed.memcpy_time(4096) == base.memcpy_time(4096)

    def test_contended_path_is_slower_than_flat(self):
        base = MyrinetMXModel()
        topo = hierarchical_topology(
            8, ranks_per_node=2, nodes_per_cluster=2, oversubscription=8.0
        )
        routed = RoutedNetworkModel(base, topo)
        flat_time = base.transfer_time(1 << 20)
        arrival, _ = routed.routed_arrival(0, 7, 1 << 20, start=0.0)
        assert arrival > flat_time

    def test_concurrent_inter_cluster_messages_queue(self):
        base = MyrinetMXModel()
        topo = hierarchical_topology(
            8, ranks_per_node=2, nodes_per_cluster=2, oversubscription=2.0
        )
        routed = RoutedNetworkModel(base, topo)
        # Two different senders in cluster 0 to cluster 1: they share the
        # cluster up/downlinks and must serialize there.
        _, wait_first = routed.routed_arrival(0, 6, 1 << 16, start=0.0)
        _, wait_second = routed.routed_arrival(2, 7, 1 << 16, start=0.0)
        assert wait_first == 0.0
        assert wait_second > 0.0

    def test_rejects_wrong_types(self):
        with pytest.raises(ConfigurationError):
            RoutedNetworkModel("not-a-model", flat_topology(2))
        with pytest.raises(ConfigurationError):
            RoutedNetworkModel(MyrinetMXModel(), "not-a-topology")

    def test_shared_model_keeps_transports_contention_independent(self):
        from repro.simulator.channel import Transport
        from repro.simulator.engine import SimulationEngine
        from repro.simulator.messages import Message

        topo = hierarchical_topology(
            8, ranks_per_node=2, nodes_per_cluster=2, oversubscription=8.0
        )
        shared = RoutedNetworkModel(MyrinetMXModel(), topo)

        # Two simulations over the SAME model instance, both constructed
        # before either runs: contention state must be per transport, not
        # per model, or the second run starts against the first's busy links.
        engines = [SimulationEngine(), SimulationEngine()]
        transports = [Transport(e, shared, lambda m: None) for e in engines]

        def arrivals(idx):
            times = [
                transports[idx].transmit(
                    Message(source=0, dest=7, tag=i, size_bytes=1 << 16)
                )
                for i in range(4)
            ]
            engines[idx].run()
            return times, transports[idx].contention_wait_s

        first = arrivals(0)
        second = arrivals(1)
        assert first == second
        assert first[1] > 0.0


class TestPresets:
    def test_available_presets(self):
        assert set(available_presets()) >= {
            "flat", "hierarchical", "fat-tree-2level", "cluster-per-node"
        }

    def test_cluster_per_node_makes_every_node_a_cluster(self):
        topo = build_topology("cluster-per-node", 12, ranks_per_node=3)
        assert topo.num_nodes == topo.num_clusters == 4

    def test_fat_tree_defaults(self):
        topo = build_topology("fat-tree-2level", 32)
        assert topo.num_nodes == 8
        assert topo.num_clusters == 2
        inter = topo.route(0, 31)[1]
        assert inter.oversubscription == 2.0

    def test_unknown_preset_and_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            build_topology("torus-9d", 8)
        with pytest.raises(ConfigurationError):
            build_topology("flat", 8, ranks_per_node=2)
        with pytest.raises(ConfigurationError):
            build_topology("hierarchical", 8, no_such_param=1)
        with pytest.raises(ConfigurationError):
            # cluster-per-node fixes nodes_per_cluster=1; silently ignoring
            # an explicit value would waste sweep grid points.
            build_topology("cluster-per-node", 8, nodes_per_cluster=4)


class TestPlacement:
    def test_aligned_clusters_follow_physical_clusters(self):
        topo = _two_cluster_topology()
        assert aligned_clusters(topo) == [list(range(8)), list(range(8, 16))]
        by_node = aligned_clusters(topo, granularity="node")
        assert len(by_node) == 4
        assert by_node[0] == [0, 1, 2, 3]

    def test_misaligned_clusters_straddle_physical_clusters(self):
        topo = _two_cluster_topology()
        clusters = misaligned_clusters(topo)
        assert len(clusters) == topo.num_clusters
        assert sorted(r for c in clusters for r in c) == list(range(16))
        # Every protocol cluster contains ranks from both physical clusters.
        for cluster in clusters:
            assert {topo.cluster_of_rank(r) for r in cluster} == {0, 1}

    def test_alignment_score(self):
        topo = _two_cluster_topology()
        assert placement_alignment(aligned_clusters(topo), topo) == 1.0
        assert placement_alignment(misaligned_clusters(topo), topo) < 0.5
        assert placement_alignment([[0], [1]], topo) == 1.0

    def test_invalid_placement_arguments(self):
        topo = _two_cluster_topology()
        with pytest.raises(ClusteringError):
            aligned_clusters(topo, granularity="rack")
        with pytest.raises(ClusteringError):
            misaligned_clusters(topo, num_clusters=0)
