"""Unit tests for trace recording, stable storage, transport and failure injection."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulator.channel import Transport
from repro.simulator.engine import SimulationEngine
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.messages import Message
from repro.simulator.network import MyrinetMXModel
from repro.simulator.stable_storage import StableStorage
from repro.simulator.trace import SendSignature, TraceRecorder, compare_send_sequences


def _msg(source, dest, size=100, tag=0, payload=None):
    return Message(source=source, dest=dest, tag=tag, size_bytes=size, payload=payload)


class TestTraceRecorder:
    def test_channel_volumes_accumulate(self):
        trace = TraceRecorder()
        trace.record_send(_msg(0, 1, 100), 0.0)
        trace.record_send(_msg(0, 1, 50), 1.0)
        trace.record_send(_msg(1, 0, 10), 2.0)
        assert trace.channel_volumes[(0, 1)] == [2, 150]
        assert trace.channel_volumes[(1, 0)] == [1, 10]
        assert trace.total_bytes() == 160
        assert trace.total_messages() == 3

    def test_communication_matrix(self):
        trace = TraceRecorder()
        trace.record_send(_msg(0, 2, 64), 0.0)
        matrix = trace.communication_matrix(3, weight="bytes")
        assert matrix[0, 2] == 64
        assert matrix.sum() == 64
        counts = trace.communication_matrix(3, weight="messages")
        assert counts[0, 2] == 1

    def test_suppressed_sends_not_counted_in_volumes_but_in_sequence(self):
        trace = TraceRecorder()
        trace.record_send(_msg(0, 1, 100, payload="a"), 0.0, suppressed=True)
        assert (0, 1) not in trace.channel_volumes
        assert len(trace.send_sequences[0]) == 1

    def test_replayed_sends_not_in_send_sequence(self):
        trace = TraceRecorder()
        message = _msg(0, 1, 100, payload="a")
        clone = message.clone_for_replay()
        trace.record_send(clone, 0.0)
        assert 0 not in trace.send_sequences

    def test_effective_sequence_without_restart_is_raw(self):
        trace = TraceRecorder()
        for i in range(3):
            trace.record_send(_msg(0, 1, 10, payload=i), float(i))
        assert trace.effective_send_sequence(0) == trace.send_sequences[0]

    def test_effective_sequence_with_restart_truncates_rolled_back_suffix(self):
        trace = TraceRecorder()
        for i in range(4):
            trace.record_send(_msg(0, 1, 10, payload=i), float(i))
        # Rank 0 rolls back to a checkpoint taken after its 2nd send, then
        # re-executes sends 2 and 3.
        trace.mark_restart(0, sends_at_checkpoint=2)
        for i in (2, 3):
            trace.record_send(_msg(0, 1, 10, payload=i), 10.0 + i)
        effective = trace.effective_send_sequence(0)
        assert [sig.payload_repr for sig in effective] == ["0", "1", "2", "3"]
        overlaps = trace.reexecution_overlaps(0)
        assert len(overlaps) == 1
        original, reexecuted = overlaps[0]
        assert original == reexecuted

    def test_compare_send_sequences_detects_divergence(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record_send(_msg(0, 1, 10, payload="x"), 0.0)
        b.record_send(_msg(0, 1, 10, payload="y"), 0.0)
        assert compare_send_sequences(a, b) == {0: (1, 1)}
        b2 = TraceRecorder()
        b2.record_send(_msg(0, 1, 10, payload="x"), 0.0)
        assert compare_send_sequences(a, b2) == {}

    def test_send_signature_ignores_timing(self):
        sig_a = SendSignature.from_message(_msg(0, 1, 10, tag=3, payload="p"))
        sig_b = SendSignature.from_message(_msg(0, 1, 10, tag=3, payload="p"))
        assert sig_a == sig_b


class TestStableStorage:
    def test_checkpoint_state_is_isolated_copy(self):
        storage = StableStorage()
        state = {"values": [1, 2, 3]}
        record = storage.save(rank=0, iteration=2, app_state=state, time=1.0)
        state["values"].append(4)
        restored = record.restore_app_state()
        assert restored == {"values": [1, 2, 3]}
        restored["values"].append(99)
        assert record.restore_app_state() == {"values": [1, 2, 3]}

    def test_latest_and_latest_common_iteration(self):
        storage = StableStorage()
        storage.save(rank=0, iteration=2, app_state={}, time=0.0)
        storage.save(rank=0, iteration=4, app_state={}, time=1.0)
        storage.save(rank=1, iteration=2, app_state={}, time=0.0)
        assert storage.latest(0).iteration == 4
        assert storage.latest_common_iteration([0, 1]) == 2
        assert storage.latest_common_iteration([0, 2]) is None

    def test_checkpoint_at_returns_most_recent_record_for_iteration(self):
        storage = StableStorage()
        storage.save(rank=0, iteration=2, app_state={"gen": 1}, time=0.0)
        storage.save(rank=0, iteration=2, app_state={"gen": 2}, time=5.0)
        assert storage.checkpoint_at(0, 2).app_state == {"gen": 2}
        with pytest.raises(SimulationError):
            storage.checkpoint_at(0, 7)

    def test_write_cost_and_accounting(self):
        storage = StableStorage(write_bandwidth_bytes_per_s=1e9)
        assert storage.write_cost(1e9) == pytest.approx(1.0)
        storage.save(rank=0, iteration=1, app_state={}, time=0.0, size_bytes=100)
        assert storage.bytes_written == 100
        assert storage.writes == 1
        free = StableStorage(write_bandwidth_bytes_per_s=None)
        assert free.write_cost(1e9) == 0.0

    def test_garbage_collect_keeps_latest(self):
        storage = StableStorage()
        for iteration in (1, 2, 3):
            storage.save(rank=0, iteration=iteration, app_state={}, time=0.0)
        removed = storage.garbage_collect(0, keep_latest=1)
        assert removed == 2
        assert storage.count(0) == 1
        assert storage.latest(0).iteration == 3


class TestTransport:
    def _make(self):
        engine = SimulationEngine()
        delivered = []
        transport = Transport(engine, MyrinetMXModel(), delivered.append)
        return engine, transport, delivered

    def test_fifo_no_overtaking_on_same_channel(self):
        engine, transport, delivered = self._make()
        big = _msg(0, 1, 8 << 20)
        small = _msg(0, 1, 1)
        transport.transmit(big)
        transport.transmit(small)
        engine.run()
        assert [m.msg_id for m in delivered] == [big.msg_id, small.msg_id]

    def test_small_message_may_overtake_on_other_channel(self):
        engine, transport, delivered = self._make()
        big = _msg(0, 1, 8 << 20)
        small = _msg(0, 2, 1)
        transport.transmit(big)
        transport.transmit(small)
        engine.run()
        assert [m.msg_id for m in delivered] == [small.msg_id, big.msg_id]

    def test_in_flight_tracking_and_drop(self):
        engine, transport, delivered = self._make()
        transport.transmit(_msg(0, 1, 100))
        transport.transmit(_msg(2, 3, 100))
        assert transport.in_flight_count() == 2
        assert transport.in_flight_within({0, 1}) == 1
        dropped = transport.drop_messages(involving={1})
        assert len(dropped) == 1
        engine.run()
        assert len(delivered) == 1
        assert transport.messages_dropped == 1


class TestFailureInjector:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(ranks=[], time=1.0)
        with pytest.raises(ConfigurationError):
            FailureEvent(ranks=[1])  # neither time nor iteration
        with pytest.raises(ConfigurationError):
            FailureEvent(ranks=[1], time=1.0, at_iteration=2)  # both

    def test_time_triggered_failure_kills_rank(self, ring8):
        from tests.conftest import run_simulation
        from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol

        injector = FailureInjector([FailureEvent(ranks=[3], time=20e-6)])
        protocol = CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                 checkpoint_size_bytes=1024)
        result, sim = run_simulation(ring8(4), 8, protocol=protocol, failures=injector)
        assert result.completed
        assert injector.failed_ranks == {3}
        assert result.stats.failures_injected == 1

    def test_iteration_triggered_failure(self, ring8, hydee16):
        # covered extensively by integration tests; here just the trigger flag.
        injector = FailureInjector([FailureEvent(ranks=[0], at_iteration=2)])
        assert injector.events[0].rank_trigger == 0
        assert not injector.any_failure_injected


class TestDeadTriggerRetargeting:
    """An iteration-triggered event whose trigger rank died for good must be
    re-triggered on a surviving rank of the event (or disarmed when none
    survives); otherwise the event can never fire and the run never settles."""

    @staticmethod
    def _compute_only_app(nprocs, iterations):
        """Communication-free workload: ranks progress independently, so the
        survivors keep completing iterations after a peer dies."""
        from repro.workloads.base import Application

        class _ComputeOnlyApp(Application):
            name = "compute-only"

            def setup(self, rank, nprocs):
                return {"done": 0}

            def iteration(self, comm, rank, state, it):
                # Rank 0 is deliberately slow so tests can kill it before it
                # reaches boundaries the other ranks already passed.
                yield from comm.compute(100.0e-6 if rank == 0 else 7.0e-6)
                state["done"] += 1

        return _ComputeOnlyApp(nprocs=nprocs, iterations=iterations)

    def _sim(self, events, nprocs=4, iterations=4):
        from repro.simulator.simulation import Simulation, SimulationConfig

        app = self._compute_only_app(nprocs, iterations)
        injector = FailureInjector(events)
        sim = Simulation(
            app,
            nprocs=nprocs,
            failures=injector,
            # No protocol: failed ranks stay dead, the run ends incomplete.
            config=SimulationConfig(raise_on_incomplete=False),
        )
        return sim, injector

    def test_event_retargets_to_next_surviving_rank(self):
        events = [
            FailureEvent(ranks=[0], time=5e-6),
            FailureEvent(ranks=[0, 2], at_iteration=2),  # trigger = rank 0
        ]
        sim, injector = self._sim(events)
        sim.run()
        # Rank 0 died first; the iteration event re-triggered on rank 2 and
        # fired when rank 2 completed iteration 2.
        assert injector.retargeted_events == 1
        assert events[1].rank_trigger == 2
        assert events[1].fired
        assert injector.failed_ranks == {0, 2}
        assert len(injector.failure_times) == 2

    def test_event_disarmed_when_no_rank_survives(self):
        events = [
            FailureEvent(ranks=[1], time=5e-6),
            FailureEvent(ranks=[1], at_iteration=3),
        ]
        sim, injector = self._sim(events)
        sim.run()
        assert injector.disarmed_events == 1
        assert events[1].fired  # disarmed, not pending forever
        assert len(injector.failure_times) == 1
        assert injector.armed_fires == 0

    def test_retarget_fires_immediately_when_survivor_already_past_boundary(self):
        # Rank 0 dies only after rank 2 has certainly completed iteration 1
        # (time-based kill late in the run): the re-targeted event must fire
        # right away instead of waiting for an iteration that already passed.
        events = [
            FailureEvent(ranks=[0], time=60e-6),
            FailureEvent(ranks=[0, 2], at_iteration=1, rank_trigger=0),
        ]
        sim, injector = self._sim(events, iterations=50)
        sim.run()
        assert injector.retargeted_events == 1
        assert events[1].fired
        assert 2 in injector.failed_ranks
        assert injector.armed_fires == 0

    def test_restarted_trigger_is_left_alone(self, ring8):
        # Under a protocol that rolls the failed rank back, the trigger is
        # alive again by the end of the failure handling: the event must NOT
        # be re-targeted, it will fire when the rank re-reaches the boundary.
        from tests.conftest import run_simulation
        from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol

        events = [
            FailureEvent(ranks=[3], time=20e-6),
            FailureEvent(ranks=[5], at_iteration=3, rank_trigger=3),
        ]
        injector = FailureInjector(events)
        protocol = CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                 checkpoint_size_bytes=1024)
        result, sim = run_simulation(ring8(6), 8, protocol=protocol, failures=injector)
        assert result.completed
        assert injector.retargeted_events == 0
        assert events[1].rank_trigger == 3
        assert events[1].fired
        assert injector.failed_ranks == {3, 5}


class TestFailureEventValidation:
    """PR-5 validation hardening: malformed events are configuration errors."""

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(ranks=[1], time=-1e-6)

    def test_non_finite_time_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                FailureEvent(ranks=[1], time=bad)

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(ranks=[2, 3, 2], time=1e-6)

    def test_zero_time_still_legal(self):
        assert FailureEvent(ranks=[0], time=0.0).time == 0.0

    def test_cross_rank_trigger_still_legal_at_event_level(self):
        # "Kill rank 5 when rank 3 completes iteration 2" stays a supported
        # simulator-level harness tool (the declarative FailureSpec is
        # stricter, see test_scenarios).
        event = FailureEvent(ranks=[5], at_iteration=2, rank_trigger=3)
        assert event.rank_trigger == 3


class TestInjectorHealthMetrics:
    """The injector's health counters surface as sim.injector.* metrics."""

    def test_counters_surface_for_runs_with_an_injector(self, ring8):
        from tests.conftest import run_simulation
        from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol

        injector = FailureInjector([FailureEvent(ranks=[3], time=20e-6)])
        protocol = CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                 checkpoint_size_bytes=1024)
        result, _ = run_simulation(ring8(4), 8, protocol=protocol, failures=injector)
        assert result.metric("sim.injector.failed_ranks") == 1
        assert result.metric("sim.injector.armed_fires") == 0
        assert result.metric("sim.injector.deferred_fires") == 0
        assert result.metric("sim.injector.disarmed_events") == 0
        assert result.metric("sim.injector.retargeted_events") == 0

    def test_no_injector_no_injector_namespace(self, ring8):
        from tests.conftest import run_simulation

        result, _ = run_simulation(ring8(3), 8)
        assert "sim.injector" not in result.metrics

    def test_disarm_and_retarget_counters_surface(self):
        # Reuse the compute-only retargeting scenario: rank 1 dies, its
        # pending iteration event has no survivor -> disarmed.
        from repro.simulator.simulation import Simulation, SimulationConfig

        app = TestDeadTriggerRetargeting._compute_only_app(4, 4)
        injector = FailureInjector([
            FailureEvent(ranks=[1], time=5e-6),
            FailureEvent(ranks=[1], at_iteration=3),
        ])
        sim = Simulation(app, nprocs=4, failures=injector,
                         config=SimulationConfig(raise_on_incomplete=False))
        result = sim.run()
        assert result.metric("sim.injector.disarmed_events") == 1
        assert result.metric("sim.injector.failed_ranks") == 1


class TestRepeatedAndDeferredFailures:
    """PR-5: stochastic traces re-fail restarted ranks and defer strikes
    that land inside an active recovery session."""

    def test_restarted_rank_can_fail_again(self, ring8):
        from tests.conftest import run_simulation
        from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol

        injector = FailureInjector([
            FailureEvent(ranks=[3], time=20e-6),
            FailureEvent(ranks=[3], time=500e-6),
        ])
        protocol = CoordinatedCheckpointProtocol(checkpoint_interval=2,
                                                 checkpoint_size_bytes=1024)
        result, _ = run_simulation(ring8(6), 8, protocol=protocol, failures=injector)
        assert result.completed
        # Both strikes landed even though they hit the same rank.
        assert result.stats.failures_injected == 2
        assert len(injector.failure_times) == 2
        assert injector.failed_ranks == {3}

    def test_strike_during_recovery_is_deferred_not_fatal(self, stencil16):
        from tests.conftest import run_simulation
        from repro.core.config import HydEEConfig
        from repro.core.protocol import HydEEProtocol

        # The second failure lands 5us after the first: HydEE's recovery
        # session is still active (it rejects concurrent sessions outright),
        # so the strike must wait for the session to wind down.
        injector = FailureInjector([
            FailureEvent(ranks=[5], time=100e-6),
            FailureEvent(ranks=[9], time=105e-6),
        ])
        protocol = HydEEProtocol(HydEEConfig(
            clusters=[[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]],
            checkpoint_interval=2,
            checkpoint_size_bytes=16 * 1024,
        ))
        result, _ = run_simulation(stencil16(8), 16, protocol=protocol,
                                   failures=injector)
        assert result.completed
        assert result.stats.failures_injected == 2
        assert injector.deferred_fires > 0
        assert result.metric("sim.injector.deferred_fires") == injector.deferred_fires
        # The deferred strike fired strictly after its nominal time.
        assert injector.failure_times[1] > 105e-6

    def test_deferred_timed_strike_holds_completion_open(self):
        # A time-triggered strike whose nominal time passed, deferred behind
        # an active recovery session, must keep the completion predicate
        # waiting: if every rank finishes while the strike is parked, the
        # run must not be declared complete underneath it.
        from repro.simulator.protocol_api import ProtocolHooks
        from repro.simulator.simulation import Simulation, SimulationConfig

        class _BusyUntil(ProtocolHooks):
            """Stub protocol whose recovery session spans a fixed window."""

            name = "busy-until"

            def __init__(self, until_s):
                super().__init__()
                self.until_s = until_s

            def recovery_in_progress(self):
                return self.sim.engine.now < self.until_s

        # Ranks finish at ~28us (4 x 7us iterations); the strike lands at
        # 20us inside a "recovery" that only winds down at 100us -- well
        # after the last rank is done.
        app = TestDeadTriggerRetargeting._compute_only_app(2, 4)
        injector = FailureInjector([FailureEvent(ranks=[1], time=20e-6)])
        sim = Simulation(app, nprocs=2, protocol=_BusyUntil(100e-6),
                         failures=injector,
                         config=SimulationConfig(raise_on_incomplete=False))
        result = sim.run()
        # The strike fired (after the session ended) instead of being
        # silently dropped by an early completion.
        assert injector.failure_times and injector.failure_times[0] >= 100e-6
        assert result.stats.failures_injected == 1
        assert injector.deferred_fires > 0
        assert injector.armed_fires == 0
        assert result.status != "completed"  # rank 1 died, nothing restarts it

    def test_out_of_range_ranks_rejected_at_attach(self):
        from repro.simulator.simulation import Simulation

        app = TestDeadTriggerRetargeting._compute_only_app(4, 2)
        injector = FailureInjector([FailureEvent(ranks=[99], time=1e-6)])
        with pytest.raises(ConfigurationError):
            Simulation(app, nprocs=4, failures=injector)

    def test_out_of_range_trigger_rejected_at_attach(self):
        from repro.simulator.simulation import Simulation

        app = TestDeadTriggerRetargeting._compute_only_app(4, 2)
        injector = FailureInjector(
            [FailureEvent(ranks=[1], at_iteration=2, rank_trigger=99)]
        )
        with pytest.raises(ConfigurationError):
            Simulation(app, nprocs=4, failures=injector)
