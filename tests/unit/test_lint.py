"""repro-lint: fixture tests for every determinism-contract rule.

Each rule gets (at least) a *violation* fixture proving it detects its
violation class, a *clean* fixture proving it stays quiet on conforming
code, and a *suppression* fixture proving inline ``# repro-lint:
disable=`` directives are honored.  The shipped tree itself must lint
clean (`test_shipped_tree_is_clean`).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import Finding, all_rules, lint_source, run_lint
from repro.lint.analyzer import lint_contexts
from repro.lint.context import ModuleContext

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def rules_of(findings):
    return [f.rule for f in findings]


def lint_one(source, module="repro/example.py", select=None):
    return lint_source(source, module=module, select=select)


# --------------------------------------------------------------------- RL01
class TestRL01SeededRng:
    def test_module_level_random_call_is_flagged(self):
        findings = lint_one("import random\nx = random.random()\n", select=["RL01"])
        assert rules_of(findings) == ["RL01"]
        assert "global" in findings[0].message

    def test_random_seed_is_flagged_everywhere(self):
        src = "import random\nrandom.seed(42)\n"
        findings = lint_one(
            src, module="repro/faults/distributions.py", select=["RL01"]
        )
        assert rules_of(findings) == ["RL01"]

    def test_numpy_random_is_flagged_through_aliases(self):
        findings = lint_one(
            "import numpy as np\nx = np.random.rand(3)\n", select=["RL01"]
        )
        assert rules_of(findings) == ["RL01"]

    def test_random_constructor_outside_factory_is_flagged(self):
        findings = lint_one(
            "from random import Random\nr = Random(3)\n", select=["RL01"]
        )
        assert rules_of(findings) == ["RL01"]
        assert "derive_rng" in findings[0].message

    def test_random_constructor_inside_factory_is_allowed(self):
        findings = lint_one(
            "import random\n\ndef derive_rng(seed: int):\n"
            "    return random.Random(seed)\n",
            module="repro/faults/distributions.py",
            select=["RL01"],
        )
        assert findings == []

    def test_derived_streams_are_clean(self):
        findings = lint_one(
            "from repro.faults.distributions import derive_rng\n"
            "rng = derive_rng('scenario', 1)\nx = rng.random()\n",
            select=["RL01"],
        )
        assert findings == []

    def test_suppression_with_justification_is_honored(self):
        findings = lint_one(
            "import random\n"
            "x = random.random()  # repro-lint: disable=RL01 -- fixture only\n",
            select=["RL01"],
        )
        assert findings == []


# --------------------------------------------------------------------- RL02
class TestRL02WallClock:
    def test_time_time_is_flagged(self):
        findings = lint_one("import time\nt = time.time()\n", select=["RL02"])
        assert rules_of(findings) == ["RL02"]

    def test_datetime_now_is_flagged_via_from_import(self):
        findings = lint_one(
            "from datetime import datetime\nnow = datetime.now()\n", select=["RL02"]
        )
        assert rules_of(findings) == ["RL02"]

    def test_uuid_and_urandom_are_flagged(self):
        findings = lint_one(
            "import os\nimport uuid\na = uuid.uuid4()\nb = os.urandom(8)\n",
            select=["RL02"],
        )
        assert rules_of(findings) == ["RL02", "RL02"]

    def test_id_feeding_hash_is_flagged(self):
        findings = lint_one(
            "def key(x: object) -> int:\n    return hash(id(x))\n", select=["RL02"]
        )
        assert rules_of(findings) == ["RL02"]

    def test_id_for_identity_sets_is_allowed(self):
        findings = lint_one(
            "def track(x, seen):\n    seen.add(id(x))\n    return id(x) in seen\n",
            select=["RL02"],
        )
        assert findings == []

    def test_simulated_clock_reads_are_clean(self):
        findings = lint_one(
            "def f(engine):\n    return engine.now\n", select=["RL02"]
        )
        assert findings == []


# --------------------------------------------------------------------- RL03
class TestRL03IterationOrder:
    def test_for_over_set_union_is_flagged(self):
        findings = lint_one(
            "def merge(a, b):\n"
            "    out = []\n"
            "    for key in set(a) | set(b):\n"
            "        out.append(key)\n"
            "    return out\n",
            select=["RL03"],
        )
        assert rules_of(findings) == ["RL03"]
        assert "sorted()" in findings[0].message

    def test_comprehension_over_set_is_flagged(self):
        findings = lint_one(
            "def f(a):\n    return [x + 1 for x in {y for y in a}]\n",
            select=["RL03"],
        )
        assert rules_of(findings) == ["RL03"]

    def test_list_of_set_typed_name_is_flagged(self):
        findings = lint_one(
            "def f(items):\n    pending = set(items)\n    return list(pending)\n",
            select=["RL03"],
        )
        assert rules_of(findings) == ["RL03"]

    def test_sorted_wrapper_is_clean(self):
        findings = lint_one(
            "def merge(a, b):\n"
            "    out = []\n"
            "    for key in sorted(set(a) | set(b)):\n"
            "        out.append(key)\n"
            "    return out\n",
            select=["RL03"],
        )
        assert findings == []

    def test_order_free_consumers_are_clean(self):
        findings = lint_one(
            "def f(a, b):\n"
            "    u = set(a) | set(b)\n"
            "    return max(u), len(u), sorted(x for x in u)\n",
            select=["RL03"],
        )
        assert findings == []

    def test_plain_dict_iteration_is_clean(self):
        findings = lint_one(
            "def f(d):\n    return [v for v in d.values()]\n", select=["RL03"]
        )
        assert findings == []


# --------------------------------------------------------------------- RL04
class TestRL04LockedWrites:
    GUARDED = "repro/campaign/example.py"

    def test_bare_write_open_in_guarded_module_is_flagged(self):
        findings = lint_one(
            "def dump(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n",
            module=self.GUARDED,
            select=["RL04"],
        )
        assert rules_of(findings) == ["RL04"]
        assert "fslock" in findings[0].message

    def test_os_replace_in_guarded_module_is_flagged(self):
        findings = lint_one(
            "import os\n\ndef publish(a, b):\n    os.replace(a, b)\n",
            module=self.GUARDED,
            select=["RL04"],
        )
        assert rules_of(findings) == ["RL04"]

    def test_reads_are_clean(self):
        findings = lint_one(
            "def load(path):\n"
            "    with open(path, encoding='utf-8') as fh:\n"
            "        return fh.read()\n",
            module=self.GUARDED,
            select=["RL04"],
        )
        assert findings == []

    def test_unguarded_modules_may_write_directly(self):
        findings = lint_one(
            "def dump(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n",
            module="repro/analysis/example.py",
            select=["RL04"],
        )
        assert findings == []

    def test_fslock_module_itself_is_exempt(self):
        findings = lint_one(
            "import os\n\ndef atomic(a, b):\n    os.replace(a, b)\n",
            module="repro/fslock.py",
            select=["RL04"],
        )
        assert findings == []

    def test_suppression_is_honored_and_requires_justification(self):
        justified = (
            "def export(path, text):\n"
            "    with open(path, 'w') as fh:  "
            "# repro-lint: disable=RL04 -- user-chosen export, not shared state\n"
            "        fh.write(text)\n"
        )
        assert lint_one(justified, module=self.GUARDED, select=["RL04"]) == []
        unjustified = (
            "def export(path, text):\n"
            "    with open(path, 'w') as fh:  # repro-lint: disable=RL04\n"
            "        fh.write(text)\n"
        )
        findings = lint_one(unjustified, module=self.GUARDED)
        assert "RL04" in rules_of(findings)  # invalid directive doesn't silence
        assert "RL00" in rules_of(findings)  # and is itself reported


# --------------------------------------------------------------------- RL05
class TestRL05FrozenSpec:
    def test_unfrozen_dataclass_spec_is_flagged(self):
        findings = lint_one(
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass FooSpec:\n    a: int = 0\n",
            select=["RL05"],
        )
        assert rules_of(findings) == ["RL05"]
        assert "frozen" in findings[0].message

    def test_non_dataclass_spec_is_flagged(self):
        findings = lint_one("class BareSpec:\n    pass\n", select=["RL05"])
        assert rules_of(findings) == ["RL05"]

    def test_field_missing_from_to_dict_is_flagged(self):
        findings = lint_one(
            "from dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    a: int = 0\n"
            "    b: int = 0\n\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a}\n",
            select=["RL05"],
        )
        assert rules_of(findings) == ["RL05"]
        assert "'b'" in findings[0].message

    def test_asdict_and_star_kwargs_pass_automatically(self):
        findings = lint_one(
            "import dataclasses\nfrom dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    a: int = 0\n"
            "    b: int = 0\n\n"
            "    def to_dict(self):\n"
            "        return dataclasses.asdict(self)\n\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls(**dict(data))\n",
            select=["RL05"],
        )
        assert findings == []

    def test_explicit_complete_serialisers_pass(self):
        findings = lint_one(
            "from dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    a: int = 0\n"
            "    b: int = 0\n\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a, 'b': self.b}\n\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls(a=data['a'], b=data['b'])\n",
            select=["RL05"],
        )
        assert findings == []

    def test_non_spec_classes_are_ignored(self):
        findings = lint_one("class Helper:\n    pass\n", select=["RL05"])
        assert findings == []


# --------------------------------------------------------------------- RL06
class TestRL06MetricNamespace:
    def test_cross_module_duplicate_dotted_metric_is_flagged(self):
        ctx_a = ModuleContext(
            "a.py",
            "def emit(metrics, v):\n    metrics.set('sim.makespan2', v)\n",
            module="repro/simulator/a.py",
        )
        ctx_b = ModuleContext(
            "b.py",
            "def emit(metrics, v):\n    metrics.set('sim.makespan2', v)\n",
            module="repro/analysis/b.py",
        )
        findings = lint_contexts([ctx_a, ctx_b], select=["RL06"])
        assert rules_of(findings) == ["RL06", "RL06"]
        assert {f.path for f in findings} == {"a.py", "b.py"}

    def test_single_producer_is_clean(self):
        findings = lint_one(
            "def emit(metrics, v):\n    metrics.set('sim.unique_metric', v)\n",
            select=["RL06"],
        )
        assert findings == []

    def test_reconstruction_modules_are_exempt(self):
        ctx_a = ModuleContext(
            "a.py",
            "def emit(metrics, v):\n    metrics.set('sim.makespan3', v)\n",
            module="repro/simulator/a.py",
        )
        ctx_b = ModuleContext(
            "migrate.py",
            "def rebuild(metrics, v):\n    metrics.set('sim.makespan3', v)\n",
            module="repro/results/migrate.py",
        )
        assert lint_contexts([ctx_a, ctx_b], select=["RL06"]) == []

    def test_duplicate_add_metric_in_one_class_is_flagged(self):
        findings = lint_one(
            "class Proto:\n"
            "    def extra_metrics(self, info):\n"
            "        add_metric(info, 'clusters', 1)\n"
            "        add_metric(info, 'clusters', 2)\n",
            select=["RL06"],
        )
        assert rules_of(findings) == ["RL06"]

    def test_stats_as_dict_key_colliding_with_add_metric_is_flagged(self):
        ctx_a = ModuleContext(
            "base.py",
            "class Proto:\n"
            "    def extra_metrics(self, info):\n"
            "        add_metric(info, 'clusters', 1)\n",
            module="repro/ftprotocols/base.py",
        )
        ctx_b = ModuleContext(
            "stats.py",
            "class ProtoStats:\n"
            "    def as_dict(self):\n"
            "        return {'clusters': 2}\n",
            module="repro/ftprotocols/stats.py",
        )
        findings = lint_contexts([ctx_a, ctx_b], select=["RL06"])
        assert rules_of(findings) == ["RL06"]
        assert findings[0].path == "stats.py"


# --------------------------------------------------------------------- RL07
class TestRL07CompiledSubset:
    CORE = "repro/simulator/_engine_core.py"

    def test_untyped_def_in_core_is_flagged(self):
        findings = lint_one("def f(x):\n    return x\n", module=self.CORE,
                            select=["RL07"])
        assert "RL07" in rules_of(findings)
        assert any("unannotated" in f.message for f in findings)

    def test_kwargs_passthrough_is_flagged(self):
        findings = lint_one(
            "def f(**kwargs: object) -> None:\n    pass\n",
            module=self.CORE,
            select=["RL07"],
        )
        assert rules_of(findings) == ["RL07"]
        assert "**kwargs" in findings[0].message

    def test_dynamic_attribute_tricks_are_flagged(self):
        findings = lint_one(
            "def f(o: object) -> object:\n    return getattr(o, 'x')\n",
            module=self.CORE,
            select=["RL07"],
        )
        assert rules_of(findings) == ["RL07"]

    def test_fully_typed_code_is_clean(self):
        findings = lint_one(
            "class Engine:\n"
            "    def __init__(self) -> None:\n"
            "        self.now = 0.0\n\n"
            "    @property\n"
            "    def time(self) -> float:\n"
            "        return self.now\n\n"
            "    def advance(self, delay: float) -> None:\n"
            "        self.now += delay\n",
            module=self.CORE,
            select=["RL07"],
        )
        assert findings == []

    def test_rule_only_applies_to_the_compiled_module(self):
        findings = lint_one("def f(x):\n    return x\n", select=["RL07"])
        assert findings == []


# --------------------------------------------------------------------- RL08
class TestRL08EqualTimeTies:
    def test_per_element_fanout_at_constant_time_is_flagged(self):
        src = (
            "def arm(self, events):\n"
            "    for event in events:\n"
            "        self.sim.engine.schedule(0.0, self._fire, event)\n"
        )
        findings = lint_one(src, select=["RL08"])
        assert rules_of(findings) == ["RL08"]
        assert "tie" in findings[0].message

    def test_loop_invariant_name_time_is_flagged(self):
        src = (
            "def arm(self, events, delay):\n"
            "    for event in events:\n"
            "        self.engine.schedule(delay, self._fire, event)\n"
        )
        findings = lint_one(src, select=["RL08"])
        assert rules_of(findings) == ["RL08"]

    def test_schedule_at_with_invariant_absolute_time_is_flagged(self):
        src = (
            "def arm(self, events, when):\n"
            "    for event in events:\n"
            "        self.engine.schedule_at(when, self._fire, event)\n"
        )
        findings = lint_one(src, select=["RL08"])
        assert rules_of(findings) == ["RL08"]

    def test_per_element_time_is_clean(self):
        src = (
            "def arm(self, events):\n"
            "    for index, event in enumerate(events):\n"
            "        self.engine.schedule(index * 1e-9, self._fire, event)\n"
        )
        assert lint_one(src, select=["RL08"]) == []

    def test_computed_time_is_exempt(self):
        # A call in the time expression may vary per iteration; stay quiet.
        src = (
            "def arm(self, events):\n"
            "    for event in events:\n"
            "        self.engine.schedule(self.delay_for(event), self._fire, event)\n"
        )
        assert lint_one(src, select=["RL08"]) == []

    def test_batched_event_is_clean(self):
        src = (
            "def arm(self, events):\n"
            "    self.sim.engine.schedule(0.0, self._fire_batch, list(events))\n"
        )
        assert lint_one(src, select=["RL08"]) == []

    def test_set_iterable_fanout_is_flagged(self):
        src = (
            "def arm(self):\n"
            "    ranks = {1, 2, 3}\n"
            "    for rank in ranks:\n"
            "        self.engine.schedule(self.delay_for(rank), self._fire, rank)\n"
        )
        findings = lint_one(src, select=["RL08"])
        assert rules_of(findings) == ["RL08"]
        assert "hash order" in findings[0].message

    def test_non_engine_schedule_is_ignored(self):
        src = (
            "def arm(self, jobs):\n"
            "    for job in jobs:\n"
            "        self.campaign.schedule(0.0, run, job)\n"
        )
        assert lint_one(src, select=["RL08"]) == []

    def test_inner_loop_owns_the_call(self):
        # Outer loop variable in the delay: invariant w.r.t. the inner loop.
        src = (
            "def arm(self, groups):\n"
            "    for offset in range(3):\n"
            "        for event in self.groups[offset]:\n"
            "            self.engine.schedule(offset * 0.1, self._fire, event)\n"
        )
        findings = lint_one(src, select=["RL08"])
        assert rules_of(findings) == ["RL08"]

    def test_suppression_is_honored(self):
        src = (
            "def arm(self, events):\n"
            "    for event in events:\n"
            "        self.engine.schedule(0.0, self._fire, event)"
            "  # repro-lint: disable=RL08 -- order proven irrelevant here\n"
        )
        assert lint_one(src, select=["RL08"]) == []


# --------------------------------------------------------------------- RL09
class TestRL09EngineIdentity:
    def test_msg_id_in_stats_extra_is_flagged(self):
        src = "def f(self, message):\n    self.stats.extra['last'] = message.msg_id\n"
        findings = lint_one(src, select=["RL09"])
        assert rules_of(findings) == ["RL09"]
        assert ".msg_id" in findings[0].message

    def test_msg_id_in_add_metric_is_flagged(self):
        src = (
            "def f(self, info, message):\n"
            "    add_metric(info, 'last_id', message.msg_id)\n"
        )
        findings = lint_one(src, select=["RL09"])
        assert rules_of(findings) == ["RL09"]

    def test_metric_set_with_identity_is_flagged(self):
        src = "def f(self, m):\n    self.metrics.set('seq', self._seq)\n"
        findings = lint_one(src, select=["RL09"])
        assert rules_of(findings) == ["RL09"]

    def test_id_call_in_json_dump_is_flagged(self):
        src = (
            "import json\n"
            "def f(obj, fh):\n"
            "    json.dump({'key': id(obj)}, fh)\n"
        )
        findings = lint_one(src, select=["RL09"])
        assert rules_of(findings) == ["RL09"]
        assert "id()" in findings[0].message

    def test_identity_inside_snapshot_is_flagged(self):
        src = (
            "def snapshot(self):\n"
            "    return {'last': self.last_message.msg_id}\n"
        )
        findings = lint_one(src, select=["RL09"])
        assert rules_of(findings) == ["RL09"]
        assert "snapshot" in findings[0].message

    def test_transient_msg_id_bookkeeping_is_clean(self):
        # In-flight tracking keyed by msg_id never persists: legitimate.
        src = (
            "def track(self, message):\n"
            "    self._in_flight[message.msg_id] = message\n"
        )
        assert lint_one(src, select=["RL09"]) == []

    def test_protocol_sequence_numbers_are_clean(self):
        src = (
            "def snapshot(self):\n"
            "    return {'send_seq': dict(self.send_seq)}\n"
        )
        assert lint_one(src, select=["RL09"]) == []

    def test_suppression_is_honored(self):
        src = (
            "def f(self, message):\n"
            "    self.stats.extra['last'] = message.msg_id"
            "  # repro-lint: disable=RL09 -- debug-only field, never compared\n"
        )
        assert lint_one(src, select=["RL09"]) == []


# ------------------------------------------------------------ RL00 hygiene
class TestSuppressionHygiene:
    def test_unused_suppression_is_reported(self):
        findings = lint_one(
            "x = 1  # repro-lint: disable=RL02 -- nothing nondeterministic here\n"
        )
        assert rules_of(findings) == ["RL00"]
        assert "unused" in findings[0].message

    def test_unknown_rule_id_is_reported(self):
        findings = lint_one("x = 1  # repro-lint: disable=RL99x -- because\n")
        assert rules_of(findings) == ["RL00"]

    def test_rl00_itself_cannot_be_suppressed(self):
        findings = lint_one(
            "x = 1  # repro-lint: disable=RL00 -- trying to silence hygiene\n"
        )
        assert rules_of(findings) == ["RL00"]

    def test_trailing_directive_covers_whole_multiline_statement(self):
        # The finding anchors on line 3 (the call) while the directive sits
        # on the closing-paren line: same logical statement, so it covers.
        src = (
            "import time\n"
            "x = (\n"
            "    time.time()\n"
            ")  # repro-lint: disable=RL02 -- wall time for a banner only\n"
        )
        assert lint_one(src, select=["RL02"]) == []

    def test_leading_directive_covers_whole_multiline_statement(self):
        src = (
            "import time\n"
            "x = (  # repro-lint: disable=RL02 -- wall time for a banner only\n"
            "    time.time()\n"
            ")\n"
        )
        assert lint_one(src, select=["RL02"]) == []

    def test_multiline_directive_is_not_reported_unused(self):
        src = (
            "import time\n"
            "x = (\n"
            "    time.time()\n"
            ")  # repro-lint: disable=RL02 -- wall time for a banner only\n"
        )
        assert lint_one(src) == []

    def test_standalone_comment_directive_does_not_leak_to_next_statement(self):
        src = (
            "import time\n"
            "# repro-lint: disable=RL02 -- floating directive, covers nothing\n"
            "x = time.time()\n"
        )
        findings = lint_one(src)
        assert sorted(rules_of(findings)) == ["RL00", "RL02"]
        assert "unused" in [f for f in findings if f.rule == "RL00"][0].message

    def test_unused_multiline_directive_reported_once(self):
        src = (
            "x = (\n"
            "    1 + 2\n"
            ")  # repro-lint: disable=RL02 -- nothing here uses a clock\n"
        )
        findings = lint_one(src)
        assert rules_of(findings) == ["RL00"]


# ----------------------------------------------------------------- baseline
class TestBaseline:
    def _run_cli(self, argv):
        from repro.lint.cli import main

        return main(argv)

    def test_apply_baseline_counts(self):
        from repro.lint.baseline import apply_baseline

        f1 = Finding(rule="RL01", path="a.py", line=3, col=0, message="m1")
        f2 = Finding(rule="RL01", path="a.py", line=9, col=0, message="m1")
        f3 = Finding(rule="RL02", path="b.py", line=1, col=0, message="m2")
        baseline = {("a.py", "RL01", "m1"): 1, ("c.py", "RL03", "gone"): 2}
        new, matched, idle = apply_baseline([f1, f2, f3], baseline)
        assert matched == 1
        assert idle == 2
        assert [(f.path, f.line) for f in new] == [("a.py", 9), ("b.py", 1)]

    def test_write_then_apply_round_trips(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n", encoding="utf-8")
        baseline = tmp_path / "lint-baseline.json"
        assert self._run_cli([str(bad), "--write-baseline", str(baseline)]) == 0
        assert "wrote baseline" in capsys.readouterr().out
        # Same tree against its own baseline: clean exit.
        assert self._run_cli([str(bad), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_new_finding_fails_despite_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n", encoding="utf-8")
        baseline = tmp_path / "lint-baseline.json"
        assert self._run_cli([str(bad), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        bad.write_text(
            "import random\nx = random.random()\ny = random.random()\n",
            encoding="utf-8",
        )
        assert self._run_cli([str(bad), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        # Only the *new* occurrence is reported.
        assert "1 finding(s)" in out
        assert "1 baselined" in out

    def test_fixed_finding_reports_idle_entry(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n", encoding="utf-8")
        baseline = tmp_path / "lint-baseline.json"
        assert self._run_cli([str(bad), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        bad.write_text("x = 1\n", encoding="utf-8")
        assert self._run_cli([str(bad), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baseline entr(ies) idle" in out

    def test_baseline_and_write_baseline_are_exclusive(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n", encoding="utf-8")
        baseline = tmp_path / "b.json"
        rc = self._run_cli(
            [str(bad), "--baseline", str(baseline), "--write-baseline", str(baseline)]
        )
        assert rc == 2

    def test_missing_baseline_file_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n", encoding="utf-8")
        rc = self._run_cli([str(bad), "--baseline", str(tmp_path / "absent.json")])
        assert rc == 2

    def test_json_format_reports_baseline_stats(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n", encoding="utf-8")
        baseline = tmp_path / "b.json"
        assert self._run_cli([str(bad), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert (
            self._run_cli([str(bad), "--baseline", str(baseline), "--format", "json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == {"matched": 1, "idle": 0}
        assert payload["findings"] == []


# ----------------------------------------------------------------- framework
class TestFramework:
    def test_all_nine_rules_are_registered(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == [
            "RL01", "RL02", "RL03", "RL04", "RL05", "RL06", "RL07",
            "RL08", "RL09",
        ]
        for rule in all_rules():
            assert rule.invariant and rule.rationale

    def test_findings_are_sorted_and_renderable(self):
        findings = lint_one(
            "import time\nimport random\n"
            "a = random.random()\nb = time.time()\n"
        )
        assert findings == sorted(findings, key=Finding.sort_key)
        rendered = findings[0].render()
        assert rendered.startswith("<fixture>:3:")
        assert findings[0].to_dict()["rule"] == "RL01"

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError):
            lint_one("x = 1\n", select=["RL42"])


# --------------------------------------------------------------- the tree
class TestShippedTree:
    def test_shipped_tree_is_clean(self):
        findings, files_checked = run_lint([SRC_REPRO])
        assert files_checked > 100
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_exits_zero_on_shipped_tree(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", SRC_REPRO],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_cli_list_rules_and_json_format(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        listed = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules", "--format", "json"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert listed.returncode == 0
        table = json.loads(listed.stdout)
        assert [row["id"] for row in table] == [
            "RL01", "RL02", "RL03", "RL04", "RL05", "RL06", "RL07",
            "RL08", "RL09",
        ]

    def test_cli_json_findings_are_machine_readable(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n", encoding="utf-8")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--format", "json", str(bad)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_checked"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["RL01"]
