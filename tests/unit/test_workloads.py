"""Unit tests for the workload definitions (patterns, matrices, metadata)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    BTApplication,
    CGApplication,
    FTApplication,
    LUApplication,
    MGApplication,
    MasterWorkerApplication,
    NAS_BENCHMARKS,
    PingPongApplication,
    PipelineApplication,
    RingApplication,
    SPApplication,
    Stencil1DApplication,
    Stencil2DApplication,
    make_nas_application,
)
from repro.workloads.nas import square_grid_side


class TestBaseValidation:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            RingApplication(nprocs=0)
        with pytest.raises(WorkloadError):
            RingApplication(nprocs=4, iterations=0)

    def test_info_and_parameters(self):
        app = RingApplication(nprocs=4, iterations=3, message_bytes=256)
        info = app.info()
        assert info.nprocs == 4
        assert info.iterations == 3
        assert info.parameters["message_bytes"] == 256

    def test_default_communication_matrix_not_implemented(self):
        app = RingApplication(nprocs=4)
        with pytest.raises(NotImplementedError):
            app.communication_matrix()


class TestStencils:
    def test_stencil1d_matrix_is_nearest_neighbour(self):
        app = Stencil1DApplication(nprocs=5, iterations=2, halo_bytes=100)
        matrix = app.communication_matrix()
        assert matrix[0, 1] == 200 and matrix[1, 0] == 200
        assert matrix[0, 2] == 0
        assert matrix[0, 4] == 0

    def test_stencil2d_grid_and_neighbours(self):
        app = Stencil2DApplication(nprocs=12, iterations=1)
        rows, cols = app.grid
        assert rows * cols == 12
        corner_neighbours = app.neighbours(0)
        assert len(corner_neighbours) == 2
        interior = app.rank_of(1, 1)
        assert len(app.neighbours(interior)) == 4

    def test_stencil2d_bad_grid_rejected(self):
        with pytest.raises(WorkloadError):
            Stencil2DApplication(nprocs=12, grid=(5, 2))

    def test_stencil2d_matrix_symmetric(self):
        app = Stencil2DApplication(nprocs=16, iterations=3)
        matrix = app.communication_matrix()
        assert np.allclose(matrix, matrix.T)


class TestNASKernels:
    @pytest.mark.parametrize("name", sorted(NAS_BENCHMARKS))
    def test_pattern_well_formed(self, name):
        app = make_nas_application(name, nprocs=16, iterations=2)
        matrix = app.communication_matrix()
        assert matrix.shape == (16, 16)
        assert np.all(np.diag(matrix) == 0)
        assert matrix.sum() > 0
        # every rank both sends and receives something
        assert np.all(matrix.sum(axis=1) > 0)
        assert np.all(matrix.sum(axis=0) > 0)

    @pytest.mark.parametrize("name", sorted(NAS_BENCHMARKS))
    def test_full_run_matrix_scales_with_npb_iterations(self, name):
        app = make_nas_application(name, nprocs=16, iterations=2)
        per_run = app.full_run_matrix().sum()
        per_iteration = app.communication_matrix().sum() / app.iterations
        assert per_run == pytest.approx(per_iteration * app.full_run_iterations)

    def test_bt_neighbours_are_torus(self):
        app = BTApplication(nprocs=16, iterations=1)
        peers = {p for p, _ in app.sends(0)}
        assert peers == {1, 3, 4, 12}  # +/-1 col, +/-1 row with wraparound on 4x4

    def test_lu_corner_has_two_partners(self):
        app = LUApplication(nprocs=16, iterations=1)
        assert len(app.sends(0)) == 2          # east + south only
        assert len(app.sends(5)) == 4          # interior rank

    def test_cg_row_partners_and_transpose(self):
        app = CGApplication(nprocs=16, iterations=1)
        peers = {p for p, _ in app.sends(1)}   # rank (0,1) on a 4x4 grid
        assert 4 in peers                       # transpose partner (1,0) = rank 4
        # the other partners stay within row 0 (ranks 0..3)
        assert all(p < 4 or p == 4 for p in peers)

    def test_ft_is_all_to_all(self):
        app = FTApplication(nprocs=9, iterations=1)
        matrix = app.communication_matrix()
        off_diagonal = matrix[~np.eye(9, dtype=bool)]
        assert off_diagonal[0] > 0
        assert np.all(off_diagonal == off_diagonal[0])

    def test_mg_has_multiple_distance_levels(self):
        app = MGApplication(nprocs=64, iterations=1)
        peers = {p for p, _ in app.sends(0)}
        assert len(peers) >= 8  # distance 1, 2 and 4 partners on an 8x8 grid

    def test_sp_total_volume_larger_than_lu(self):
        sp = SPApplication(nprocs=16, iterations=1)
        lu = LUApplication(nprocs=16, iterations=1)
        assert sp.full_run_matrix().sum() > lu.full_run_matrix().sum()

    def test_square_grid_required(self):
        with pytest.raises(WorkloadError):
            BTApplication(nprocs=12)
        assert square_grid_side(49) == 7

    def test_unknown_benchmark_name(self):
        with pytest.raises(KeyError):
            make_nas_application("does-not-exist", nprocs=16)

    def test_message_scale_shrinks_volumes(self):
        full = BTApplication(nprocs=16, iterations=1)
        scaled = BTApplication(nprocs=16, iterations=1, message_scale=0.5)
        assert scaled.communication_matrix().sum() == pytest.approx(
            0.5 * full.communication_matrix().sum(), rel=0.01
        )


class TestOtherWorkloads:
    def test_pingpong_requires_two_ranks(self):
        with pytest.raises(WorkloadError):
            PingPongApplication(nprocs=3)
        with pytest.raises(WorkloadError):
            PingPongApplication(nprocs=2, sizes=[])

    def test_pingpong_parameters(self):
        app = PingPongApplication(nprocs=2, sizes=[1, 1024], repeats=2)
        assert app.parameters()["sizes"] == 2

    def test_master_worker_declares_non_send_deterministic(self):
        app = MasterWorkerApplication(nprocs=4)
        assert app.send_deterministic is False
        assert app.total_tasks == 6

    def test_send_deterministic_flag_default_true(self):
        assert RingApplication(nprocs=4).send_deterministic is True
        assert PipelineApplication(nprocs=4).send_deterministic is True


#: workload kind -> factory for a small-but-nontrivial instance; every entry
#: must be ff_bulk_compatible and is held to the bit-identity contract below.
FF_COVERED_APPS = {
    "stencil1d": lambda: Stencil1DApplication(nprocs=6, iterations=25, points_per_rank=8),
    "stencil2d": lambda: Stencil2DApplication(nprocs=12, iterations=25),
    "ring": lambda: RingApplication(nprocs=5, iterations=25),
    "pipeline": lambda: PipelineApplication(nprocs=5, iterations=25),
    "bt": lambda: BTApplication(nprocs=9, iterations=12),
    "cg": lambda: CGApplication(nprocs=9, iterations=12),
    "ft": lambda: FTApplication(nprocs=9, iterations=12),
    "lu": lambda: LUApplication(nprocs=9, iterations=12),
    "mg": lambda: MGApplication(nprocs=9, iterations=12),
    "sp": lambda: SPApplication(nprocs=9, iterations=12),
}


class TestFastForwardStates:
    """The bulk fast-forward must be bit-identical to the message path."""

    @pytest.mark.parametrize("kind", sorted(FF_COVERED_APPS))
    def test_bulk_advance_bit_identical_to_full_simulation(self, kind):
        # Drive the real message path (full DES, every send/recv exchanged)
        # and require the analytically advanced states to land on the exact
        # same floats -- same operations in the same order, no tolerance.
        from repro.simulator.simulation import Simulation

        app = FF_COVERED_APPS[kind]()
        assert app.ff_bulk_compatible is True
        nprocs = app.nprocs
        sim = Simulation(app, nprocs=nprocs)
        result = sim.run()
        assert result.completed

        states = {rank: app.setup(rank, nprocs) for rank in range(nprocs)}
        assert app.fast_forward_states(states, 0, app.iterations) is True
        for rank in range(nprocs):
            assert states[rank] == sim.ranks[rank].app_state, (kind, rank)

    @pytest.mark.parametrize("kind", sorted(FF_COVERED_APPS))
    def test_bulk_advance_composes(self, kind):
        # Advancing k then n-k iterations lands on the same floats as n at
        # once (the hybrid director advances interval-by-interval).
        app = FF_COVERED_APPS[kind]()
        nprocs, n = app.nprocs, app.iterations
        split = {rank: app.setup(rank, nprocs) for rank in range(nprocs)}
        whole = {rank: app.setup(rank, nprocs) for rank in range(nprocs)}
        assert app.fast_forward_states(split, 0, n // 3)
        assert app.fast_forward_states(split, n // 3, n - n // 3)
        assert app.fast_forward_states(whole, 0, n)
        assert split == whole

    @pytest.mark.parametrize("kind", sorted(FF_COVERED_APPS))
    def test_incomplete_state_set_is_refused(self, kind):
        app = FF_COVERED_APPS[kind]()
        nprocs = app.nprocs
        states = {rank: app.setup(rank, nprocs) for rank in range(nprocs - 1)}
        assert app.fast_forward_states(states, 0, 1) is False

    def test_single_rank_bulk_advance(self):
        for app in (RingApplication(nprocs=1, iterations=4),
                    PipelineApplication(nprocs=1, iterations=4)):
            from repro.simulator.simulation import Simulation

            sim = Simulation(app, nprocs=1)
            assert sim.run().completed
            states = {0: app.setup(0, 1)}
            assert app.fast_forward_states(states, 0, app.iterations) is True
            assert states[0] == sim.ranks[0].app_state

    def test_non_deterministic_workloads_stay_uncovered(self):
        # Master-worker is not send-deterministic and netpipe's per-iteration
        # timing varies with message size; neither may claim bulk advance.
        assert MasterWorkerApplication(nprocs=4).ff_bulk_compatible is False
        assert PingPongApplication(nprocs=2).ff_bulk_compatible is False
        assert RingApplication(nprocs=4).ff_bulk_compatible is True
