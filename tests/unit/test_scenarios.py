"""Unit tests for the declarative scenario layer (spec / build / sweep)."""

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    NetworkSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    available_workloads,
    build,
    build_application,
    build_config,
    build_network,
    load_specs,
    resolve_clusters,
    sweep,
    to_network_spec,
    with_path,
)
from repro.simulator.network import EthernetTCPModel, MyrinetMXModel
from repro.simulator.simulation import Simulation
from repro.workloads.nas import NAS_BENCHMARKS


def full_spec() -> ScenarioSpec:
    """A spec exercising every nested piece."""
    return ScenarioSpec(
        name="full",
        workload=WorkloadSpec(
            kind="stencil2d", nprocs=16, iterations=6, params={"halo_bytes": 4096}
        ),
        protocol=ProtocolSpec(
            name="hydee",
            options={"checkpoint_interval": 2, "checkpoint_size_bytes": 65536},
            clustering=ClusteringSpec(method="block", num_clusters=4),
        ),
        network=NetworkSpec(model="ethernet-tcp", overrides={"send_overhead_s": 2e-6}),
        failures=(FailureSpec(ranks=(5,), at_iteration=4),),
        config={"record_trace_events": True},
        tags={"experiment": "unit-test"},
    )


class TestSpecRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = full_spec()
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.spec_hash() == spec.spec_hash()

    def test_round_trip_through_plain_json(self):
        # Through an actual serialised file representation (lists, not tuples).
        spec = full_spec()
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_specs_are_picklable(self):
        spec = full_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_hash_changes_with_content(self):
        spec = full_spec()
        other = with_path(spec, "workload.nprocs", 64)
        assert other.spec_hash() != spec.spec_hash()

    def test_hash_is_stable_across_instances(self):
        assert full_spec().spec_hash() == full_spec().spec_hash()

    def test_load_specs_accepts_single_and_list(self):
        spec = full_spec()
        assert load_specs(spec.to_dict()) == (spec,)
        assert load_specs([spec.to_dict(), spec.to_dict()]) == (spec, spec)
        with pytest.raises(ConfigurationError):
            load_specs("nonsense")

    def test_explicit_clustering_normalises_to_tuples(self):
        clustering = ClusteringSpec(method="explicit", clusters=[[0, 1], [2, 3]])
        assert clustering.clusters == ((0, 1), (2, 3))

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusteringSpec(method="sideways")
        with pytest.raises(ConfigurationError):
            ClusteringSpec(method="explicit")  # no clusters
        with pytest.raises(ConfigurationError):
            ClusteringSpec(method="block")  # no num_clusters
        with pytest.raises(ConfigurationError):
            FailureSpec(ranks=())
        with pytest.raises(ConfigurationError):
            FailureSpec(ranks=(1,))  # neither time nor at_iteration
        with pytest.raises(ConfigurationError):
            FailureSpec(ranks=(1,), time=1.0, at_iteration=2)  # both


class TestSweep:
    def test_grid_expansion_counts_and_names(self):
        base = ScenarioSpec(
            name="base", workload=WorkloadSpec(kind="ring", nprocs=8, iterations=2)
        )
        specs = sweep(
            base,
            {
                "workload.nprocs": [4, 8],
                "protocol.name": ["none", "hydee-log-all"],
                "workload.params.message_bytes": [256, 1024, 4096],
            },
        )
        assert len(specs) == 2 * 2 * 3
        assert len({s.name for s in specs}) == len(specs)
        assert len({s.spec_hash() for s in specs}) == len(specs)
        # Deterministic order: first axis varies slowest.
        assert specs[0].workload.nprocs == 4
        assert specs[-1].workload.nprocs == 8
        assert specs[0].workload.params["message_bytes"] == 256
        assert specs[2].workload.params["message_bytes"] == 4096

    def test_empty_axes_returns_base(self):
        base = ScenarioSpec(
            name="base", workload=WorkloadSpec(kind="ring", nprocs=8, iterations=2)
        )
        assert sweep(base, {}) == [base]

    def test_with_path_sets_nested_mapping_entries(self):
        base = full_spec()
        updated = with_path(base, "config.max_events", 1000)
        assert updated.config["max_events"] == 1000
        assert updated.config["record_trace_events"] is True
        assert base.config == {"record_trace_events": True}  # base untouched

    def test_with_path_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            with_path(full_spec(), "workload.wheels", 4)
        with pytest.raises(ConfigurationError):
            sweep(full_spec(), {"workload.nprocs": []})


def _workload_spec(kind: str) -> WorkloadSpec:
    if kind == "netpipe":
        return WorkloadSpec(kind=kind, nprocs=2, iterations=1,
                            params={"sizes": [64], "repeats": 1})
    return WorkloadSpec(kind=kind, nprocs=4, iterations=2)


PROTOCOL_SPECS = {
    "none": ProtocolSpec(name="none"),
    "native": ProtocolSpec(name="native"),
    "hydee": ProtocolSpec(
        name="hydee", clustering=ClusteringSpec(method="block", num_clusters=2)
    ),
    "hydee-log-all": ProtocolSpec(name="hydee-log-all"),
    "coordinated": ProtocolSpec(name="coordinated"),
    "message-logging": ProtocolSpec(name="message-logging"),
    "hybrid-event-logging": ProtocolSpec(
        name="hybrid-event-logging",
        clustering=ClusteringSpec(method="block", num_clusters=2),
    ),
}


class TestBuild:
    @pytest.mark.parametrize("kind", sorted(available_workloads()))
    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOL_SPECS))
    def test_build_wires_every_workload_protocol_pair(self, kind, protocol_name):
        spec = ScenarioSpec(
            name=f"{kind}-{protocol_name}",
            workload=_workload_spec(kind),
            protocol=PROTOCOL_SPECS[protocol_name],
        )
        if kind == "master-worker" and protocol_name.startswith(
            ("hydee", "hybrid")
        ):
            # The HydEE family refuses non-send-deterministic applications
            # (master/worker is the paper's counterexample).
            with pytest.raises(ConfigurationError):
                build(spec)
            return
        sim = build(spec)
        assert isinstance(sim, Simulation)
        assert sim.nprocs == spec.workload.nprocs
        if protocol_name == "none":
            assert type(sim.protocol).__name__ == "ProtocolHooks"
        else:
            assert sim.protocol is not None
        # Campaign default: no per-event trace allocation.
        assert sim.trace.record_events is False

    @pytest.mark.parametrize("kind", ["ring", "stencil2d", "cg"])
    def test_built_simulations_run_to_completion(self, kind):
        spec = ScenarioSpec(
            name=f"run-{kind}",
            workload=_workload_spec(kind),
            protocol=PROTOCOL_SPECS["hydee"],
        )
        result = build(spec).run()
        assert result.completed

    def test_unknown_workload_and_network_are_rejected(self):
        with pytest.raises(ConfigurationError):
            build_application(WorkloadSpec(kind="frogger", nprocs=4, iterations=1))
        spec = ScenarioSpec(
            name="bad-net",
            workload=_workload_spec("ring"),
            network=NetworkSpec(model="carrier-pigeon"),
        )
        with pytest.raises(ConfigurationError):
            build_network(spec)

    def test_unknown_config_override_is_rejected(self):
        spec = ScenarioSpec(
            name="bad-config",
            workload=_workload_spec("ring"),
            config={"warp_speed": True},
        )
        with pytest.raises(ConfigurationError):
            build_config(spec)

    def test_network_overrides_are_applied(self):
        spec = ScenarioSpec(
            name="net",
            workload=_workload_spec("ring"),
            network=NetworkSpec(model="myrinet-mx",
                                overrides={"bandwidth_bytes_per_s": 5e8}),
        )
        assert build_network(spec).bandwidth_bytes_per_s == 5e8

    def test_to_network_spec_round_trips_models(self):
        for model in (MyrinetMXModel(), EthernetTCPModel(),
                      MyrinetMXModel(bandwidth_bytes_per_s=9e8)):
            restored_spec = to_network_spec(model)
            rebuilt = build_network(
                ScenarioSpec(name="n", workload=_workload_spec("ring"),
                             network=restored_spec)
            )
            assert type(rebuilt) is type(model)
            assert rebuilt.bandwidth_bytes_per_s == model.bandwidth_bytes_per_s

    def test_resolve_clusters_methods(self):
        workload = WorkloadSpec(kind="cg", nprocs=16, iterations=1)
        assert resolve_clusters(ClusteringSpec(), workload) is None
        explicit = resolve_clusters(
            ClusteringSpec(method="explicit", clusters=((0, 1), (2, 3))), workload
        )
        assert explicit == [[0, 1], [2, 3]]
        block = resolve_clusters(
            ClusteringSpec(method="block", num_clusters=4), workload
        )
        assert len(block) == 4 and sorted(sum(block, [])) == list(range(16))
        partitioned = resolve_clusters(
            ClusteringSpec(method="partition", num_clusters=4), workload
        )
        assert len(partitioned) == 4
        preset = resolve_clusters(ClusteringSpec(method="preset"), workload)
        # CG's Table I preset is 16 clusters, clamped to nprocs.
        assert len(preset) == 16

    def test_nas_kinds_cover_the_six_kernels(self):
        assert set(NAS_BENCHMARKS) <= set(available_workloads())

    def test_failure_spec_builds_injector(self):
        spec = ScenarioSpec(
            name="failing",
            workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=6),
            protocol=PROTOCOL_SPECS["hydee"],
            failures=(FailureSpec(ranks=(5,), at_iteration=3),),
        )
        sim = build(spec)
        assert sim.failure_injector is not None
        result = sim.run()
        assert result.completed
        assert result.stats.failures_injected == 1
        assert result.stats.ranks_rolled_back > 0


class TestTopologySpec:
    def _topo_spec(self) -> ScenarioSpec:
        from repro.scenarios import TopologySpec

        return ScenarioSpec(
            name="topo",
            workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=4),
            protocol=ProtocolSpec(
                name="hydee",
                options={"checkpoint_interval": 2},
                clustering=ClusteringSpec(method="topology"),
            ),
            network=NetworkSpec(
                topology=TopologySpec(
                    preset="cluster-per-node",
                    params={"ranks_per_node": 4, "oversubscription": 4.0},
                )
            ),
        )

    def test_json_round_trip_is_identity(self):
        spec = self._topo_spec()
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.network.topology == spec.network.topology
        assert restored.spec_hash() == spec.spec_hash()

    def test_round_trip_through_plain_json(self):
        spec = self._topo_spec()
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_specs_without_topology_serialise_as_before(self):
        # A spec with no topology must not gain a "topology" key: pre-topology
        # spec hashes are cache keys and must remain stable.
        spec = full_spec()
        assert "topology" not in spec.to_dict()["network"]
        pinned = ScenarioSpec(
            name="hash-pin",
            workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=8),
            protocol=ProtocolSpec(
                name="hydee",
                options={"checkpoint_interval": 2},
                clustering=ClusteringSpec(method="block", num_clusters=4),
            ),
            failures=(FailureSpec(ranks=(5,), at_iteration=5),),
        )
        # Hash computed before the topology layer existed (PR 1 code).
        assert pinned.spec_hash() == "47aa6a972cec363d"

    def test_unknown_preset_rejected_at_spec_time(self):
        from repro.scenarios import TopologySpec

        with pytest.raises(ConfigurationError):
            TopologySpec(preset="moebius-strip")

    def test_topology_params_are_sweepable(self):
        spec = self._topo_spec()
        grid = sweep(
            spec, {"network.topology.params.oversubscription": [1.0, 2.0, 8.0]}
        )
        values = [s.network.topology.params["oversubscription"] for s in grid]
        assert values == [1.0, 2.0, 8.0]
        assert len({s.spec_hash() for s in grid}) == 3

    def test_build_produces_routed_network(self):
        from repro.simulator.network import RoutedNetworkModel

        network = build_network(self._topo_spec())
        assert isinstance(network, RoutedNetworkModel)
        assert network.topology.num_clusters == 4
        flat = build_network(full_spec())
        assert not isinstance(flat, RoutedNetworkModel)

    def test_topology_clustering_methods_resolve(self):
        spec = self._topo_spec()
        clusters = resolve_clusters(
            spec.protocol.clustering, spec.workload, topology=spec.network.topology
        )
        assert clusters == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]
        misaligned = resolve_clusters(
            ClusteringSpec(method="topology-misaligned"),
            spec.workload,
            topology=spec.network.topology,
        )
        assert sorted(r for c in misaligned for r in c) == list(range(16))
        assert misaligned != clusters

    def test_topology_clustering_requires_non_flat_topology(self):
        from repro.scenarios import TopologySpec

        spec = self._topo_spec()
        with pytest.raises(ConfigurationError):
            resolve_clusters(spec.protocol.clustering, spec.workload, topology=None)
        with pytest.raises(ConfigurationError):
            resolve_clusters(
                spec.protocol.clustering,
                spec.workload,
                topology=TopologySpec(preset="flat"),
            )

    def test_built_topology_scenario_runs_to_completion(self):
        result = build(self._topo_spec()).run()
        assert result.completed
        assert result.metric("network.topology.clusters") == 4
        assert "links.tiers.inter-cluster" in result.metrics
        assert result.metric("network.contention_wait_s") >= 0.0


class TestFailureSpecValidation:
    """PR-5 validation hardening of the declarative failure layer."""

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSpec(ranks=(1,), time=-1.0)

    def test_non_finite_times_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                FailureSpec(ranks=(1,), time=bad)

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSpec(ranks=(4, 4), time=1e-3)

    def test_trigger_outside_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSpec(ranks=(5,), at_iteration=3, rank_trigger=3)

    def test_trigger_inside_ranks_accepted(self):
        spec = FailureSpec(ranks=(3, 5), at_iteration=3, rank_trigger=5)
        assert spec.rank_trigger == 5

    def test_valid_time_spec_accepted(self):
        assert FailureSpec(ranks=(1, 2), time=0.0).time == 0.0
