"""Unit tests for the stochastic fault-model subsystem (:mod:`repro.faults`)."""

import dataclasses
import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FailureTrace,
    FaultModelSpec,
    TraceEntry,
    derive_rng,
    derive_seed,
    generate_trace,
    make_distribution,
)
from repro.faults.distributions import (
    ExponentialInterArrival,
    FixedInterArrival,
    ReplayInterArrival,
    WeibullInterArrival,
)
from repro.scenarios import (
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    build,
    sweep,
)
from repro.simulator.failures import FailureEvent
from repro.topology import build_topology


def fault(**overrides) -> FaultModelSpec:
    defaults = dict(
        distribution="exponential", params={"mtbf_s": 2e-3}, horizon_s=4e-3, seed=3
    )
    defaults.update(overrides)
    return FaultModelSpec(**defaults)


# --------------------------------------------------------------- distributions
class TestDistributions:
    def test_derive_seed_is_deterministic_and_content_keyed(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert derive_seed("a", 12) != derive_seed("a1", 2)

    def test_same_stream_key_same_samples(self):
        dist = ExponentialInterArrival(mtbf_s=1.0)
        first = [dist.sample(derive_rng("k", i)) for i in range(5)]
        second = [dist.sample(derive_rng("k", i)) for i in range(5)]
        assert first == second

    def test_exponential_mean_roughly_mtbf(self):
        dist = ExponentialInterArrival(mtbf_s=3.0)
        rng = derive_rng("mean-test")
        samples = [dist.sample(rng) for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, rel=0.1)

    def test_weibull_mean_matches_mtbf_for_any_shape(self):
        for shape in (0.7, 1.0, 2.5):
            dist = WeibullInterArrival(mtbf_s=2.0, shape=shape)
            rng = derive_rng("weibull", shape)
            samples = [dist.sample(rng) for _ in range(6000)]
            assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)

    def test_fixed_is_deterministic(self):
        dist = FixedInterArrival(mtbf_s=0.5)
        rng = derive_rng("fixed")
        assert [dist.sample(rng) for _ in range(3)] == [0.5, 0.5, 0.5]

    def test_replay_exhausts_and_scales(self):
        dist = ReplayInterArrival([1.0, 2.0])
        rng = derive_rng("replay")
        assert [dist.sample(rng) for _ in range(3)] == [1.0, 2.0, None]
        rewound = dist.scaled(2.0)
        assert [rewound.sample(rng) for _ in range(3)] == [2.0, 4.0, None]

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            make_distribution("exponential", {})
        with pytest.raises(ConfigurationError):
            make_distribution("exponential", {"mtbf_s": -1.0})
        with pytest.raises(ConfigurationError):
            make_distribution("weibull", {"mtbf_s": 1.0, "shape": 0.0})
        with pytest.raises(ConfigurationError):
            make_distribution("replay", {"intervals": []})
        with pytest.raises(ConfigurationError):
            make_distribution("no-such-process", {"mtbf_s": 1.0})


# ----------------------------------------------------------------------- spec
class TestFaultModelSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModelSpec(distribution="uniformish")
        with pytest.raises(ConfigurationError):
            fault(scope="rack")
        with pytest.raises(ConfigurationError):
            fault(horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            fault(horizon_s=float("nan"))
        with pytest.raises(ConfigurationError):
            FaultModelSpec(distribution="exponential", params={"mtbf_s": 1.0})
        with pytest.raises(ConfigurationError):
            fault(max_failures=0)
        with pytest.raises(ConfigurationError):
            fault(max_failures=2.5)
        with pytest.raises(ConfigurationError):
            fault(max_failures="3")
        with pytest.raises(ConfigurationError):
            fault(seed=-1)
        with pytest.raises(ConfigurationError):
            fault(replica=-2)

    def test_distribution_params_validated_eagerly(self):
        # A missing or mistyped mtbf_s must fail at spec construction, not
        # replicas-deep inside a campaign worker.
        with pytest.raises(ConfigurationError):
            fault(params={})
        with pytest.raises(ConfigurationError):
            fault(params={"mtbf_s": "0.008"})
        with pytest.raises(ConfigurationError):
            FaultModelSpec(distribution="trace", params={})
        with pytest.raises(ConfigurationError):
            fault(horizon_s=True)  # bool is not a duration
        # An explicit null source behaves like an absent key.
        with pytest.raises(ConfigurationError):
            FaultModelSpec(distribution="trace", params={"path": None})
        ok = FaultModelSpec(
            distribution="trace",
            params={"events": [[1e-3, [0]]], "path": None},
        )
        assert ok.params["path"] is None

    def test_json_round_trip(self):
        spec = fault(max_failures=3, replica=7)
        restored = FaultModelSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.canonical_json() == spec.canonical_json()

    def test_trace_distribution_needs_no_horizon(self):
        spec = FaultModelSpec(
            distribution="trace", params={"events": [[1e-3, [0]]]}
        )
        assert spec.horizon_s is None


class TestScenarioIntegration:
    def scenario(self, fault_model=None, **kwargs) -> ScenarioSpec:
        return ScenarioSpec(
            name="faulty",
            workload=WorkloadSpec(kind="ring", nprocs=8, iterations=4),
            protocol=ProtocolSpec(
                name="coordinated",
                options={"checkpoint_interval": 2, "checkpoint_size_bytes": 1024},
            ),
            fault_model=fault_model,
            **kwargs,
        )

    def test_fault_model_and_failures_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            self.scenario(
                fault_model=fault(),
                failures=(FailureSpec(ranks=(1,), time=1e-3),),
            )

    def test_spec_without_fault_model_serialises_as_before(self):
        spec = self.scenario()
        assert "fault_model" not in spec.to_dict()
        # The PR-1 pinned hash must survive the fault-model layer too.
        pinned = ScenarioSpec(
            name="hash-pin",
            workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=8),
            protocol=ProtocolSpec(
                name="hydee",
                options={"checkpoint_interval": 2},
                clustering=dataclasses.replace(
                    ProtocolSpec().clustering, method="block", num_clusters=4
                ),
            ),
            failures=(FailureSpec(ranks=(5,), at_iteration=5),),
        )
        assert pinned.spec_hash() == "47aa6a972cec363d"

    def test_spec_json_round_trip_with_fault_model(self):
        spec = self.scenario(fault_model=fault(replica=2))
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.fault_model == spec.fault_model
        assert restored.spec_hash() == spec.spec_hash()

    def test_fault_model_accepts_mapping(self):
        spec = self.scenario(fault_model=dict(
            distribution="fixed", params={"mtbf_s": 1e-3}, horizon_s=2e-3
        ))
        assert isinstance(spec.fault_model, FaultModelSpec)

    def test_sweep_over_fault_model_axes(self):
        base = self.scenario(fault_model=fault())
        grid = sweep(base, {
            "fault_model.params.mtbf_s": [1e-3, 2e-3],
            "fault_model.seed": [0, 1, 2],
        })
        assert len(grid) == 6
        hashes = {spec.spec_hash() for spec in grid}
        assert len(hashes) == 6
        assert {spec.fault_model.params["mtbf_s"] for spec in grid} == {1e-3, 2e-3}
        # Sweeping the seed re-draws the trace.
        traces = [
            generate_trace(spec.fault_model, 8)
            for spec in grid
            if spec.fault_model.params["mtbf_s"] == 1e-3
        ]
        assert len({tuple(t.failure_times) for t in traces}) == 3

    def test_sweeping_absent_fault_model_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            sweep(self.scenario(), {"fault_model.seed": [0, 1]})

    def test_build_materialises_the_generated_trace(self):
        spec = self.scenario(fault_model=fault(max_failures=2))
        sim = build(spec)
        assert sim.failure_injector is not None
        trace = generate_trace(spec.fault_model, 8)
        assert [e.time for e in sim.failure_injector.events] == trace.failure_times
        assert len(sim.failure_injector.events) <= 2

    def test_empty_draw_still_gets_an_injector(self):
        # Every replica must publish the same metric paths, including the
        # calm ones: an empty draw keeps the (empty) injector.
        spec = self.scenario(
            fault_model=fault(params={"mtbf_s": 1e3}, horizon_s=1e-6)
        )
        sim = build(spec)
        assert sim.failure_injector is not None
        assert sim.failure_injector.events == []


# ---------------------------------------------------------------------- trace
class TestTraceGeneration:
    def test_same_spec_identical_trace(self):
        assert generate_trace(fault(), 8) == generate_trace(fault(), 8)

    def test_replica_and_seed_rekey_every_stream(self):
        base = generate_trace(fault(), 8)
        assert base != generate_trace(fault(replica=1), 8)
        assert base != generate_trace(fault(seed=4), 8)

    def test_times_inside_horizon_and_sorted(self):
        trace = generate_trace(fault(), 16)
        times = trace.failure_times
        assert times == sorted(times)
        assert all(0 < t <= 4e-3 for t in times)

    def test_max_failures_truncates_after_merge(self):
        full = generate_trace(fault(), 16)
        capped = generate_trace(fault(max_failures=3), 16)
        assert len(full) > 3
        assert capped.entries == full.entries[:3]

    def test_mtbf_scale_shifts_one_unit(self):
        # Scaling one rank's MTBF down makes it fail (much) more often.
        scaled = generate_trace(
            fault(params={"mtbf_s": 2e-3, "mtbf_scale": {"0": 0.05}}), 4
        )
        base = generate_trace(fault(), 4)
        count = lambda t, unit: sum(1 for e in t if e.unit == unit)  # noqa: E731
        assert count(scaled, "rank:0") > count(base, "rank:0")

    def test_node_scope_kills_whole_nodes(self):
        topo = build_topology_spec("cluster-per-node", 16, ranks_per_node=4)
        trace = generate_trace(fault(scope="node", params={"mtbf_s": 1e-3}), 16, topo)
        assert len(trace) > 0
        for entry in trace:
            assert entry.unit.startswith("node:")
            node = int(entry.unit.split(":")[1])
            assert entry.ranks == tuple(range(4 * node, 4 * node + 4))

    def test_cluster_scope_kills_whole_clusters(self):
        topo = build_topology_spec(
            "hierarchical", 16, ranks_per_node=4, nodes_per_cluster=2
        )
        trace = generate_trace(
            fault(scope="cluster", params={"mtbf_s": 1e-3}), 16, topo
        )
        assert len(trace) > 0
        assert all(len(entry.ranks) == 8 for entry in trace)

    def test_group_scopes_need_a_topology(self):
        with pytest.raises(ConfigurationError):
            generate_trace(fault(scope="node"), 16, None)

    def test_topology_rank_count_must_match(self):
        topo = build_topology_spec("cluster-per-node", 8, ranks_per_node=4)
        with pytest.raises(ConfigurationError):
            generate_trace(fault(scope="node"), 16, topo)

    def test_runaway_fault_model_is_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_trace(
                fault(params={"mtbf_s": 1e-9}, horizon_s=1.0), 4
            )

    def test_fixed_interval_trace(self):
        trace = generate_trace(
            fault(distribution="fixed", params={"mtbf_s": 1e-3}, horizon_s=3.5e-3), 1
        )
        assert trace.failure_times == pytest.approx([1e-3, 2e-3, 3e-3])


def build_topology_spec(preset, nprocs, **params):
    return build_topology(preset, nprocs, **params)


class TestTraceRoundTripAndReplay:
    def test_json_round_trip_identity(self):
        trace = generate_trace(fault(), 8)
        assert FailureTrace.from_json(trace.to_json()) == trace

    def test_save_load_round_trip(self, tmp_path):
        trace = generate_trace(fault(), 8)
        path = tmp_path / "trace.json"
        trace.save(str(path))
        assert FailureTrace.load(str(path)) == trace

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureTrace.from_dict({"version": 99, "entries": []})

    def test_to_failure_events(self):
        trace = FailureTrace([TraceEntry(time=1e-3, ranks=(1, 2))])
        events = trace.to_failure_events()
        assert len(events) == 1
        assert isinstance(events[0], FailureEvent)
        assert events[0].time == 1e-3 and list(events[0].ranks) == [1, 2]

    def test_entry_validation(self):
        with pytest.raises(ConfigurationError):
            TraceEntry(time=-1.0, ranks=(0,))
        with pytest.raises(ConfigurationError):
            TraceEntry(time=float("inf"), ranks=(0,))
        with pytest.raises(ConfigurationError):
            TraceEntry(time=1.0, ranks=())
        with pytest.raises(ConfigurationError):
            TraceEntry(time=1.0, ranks=(1, 1))

    def test_inline_trace_replay(self):
        spec = FaultModelSpec(
            distribution="trace",
            params={"events": [{"time": 2e-3, "ranks": [3]}, [1e-3, [0, 1]]]},
        )
        trace = generate_trace(spec, 8)
        # Replayed entries are normalised into deterministic time order.
        assert trace.failure_times == [1e-3, 2e-3]

    def test_file_trace_replay_round_trips_a_generated_trace(self, tmp_path):
        original = generate_trace(fault(), 8)
        path = tmp_path / "archived.json"
        original.save(str(path))
        replayed = generate_trace(
            FaultModelSpec(distribution="trace", params={"path": str(path)}), 8
        )
        assert replayed.failure_times == original.failure_times
        assert [e.ranks for e in replayed] == [e.ranks for e in original]

    def test_replayed_ranks_validated_against_nprocs(self):
        spec = FaultModelSpec(
            distribution="trace", params={"events": [[1e-3, [9]]]}
        )
        with pytest.raises(ConfigurationError):
            generate_trace(spec, 4)

    def test_trace_needs_exactly_one_source(self):
        with pytest.raises(ConfigurationError):
            generate_trace(FaultModelSpec(distribution="trace"), 4)
        with pytest.raises(ConfigurationError):
            generate_trace(
                FaultModelSpec(
                    distribution="trace",
                    params={"events": [[1e-3, [0]]], "path": "x.json"},
                ),
                4,
            )

    def test_horizon_filters_replayed_entries(self):
        spec = FaultModelSpec(
            distribution="trace",
            params={"events": [[1e-3, [0]], [5e-3, [1]]]},
            horizon_s=2e-3,
        )
        assert generate_trace(spec, 4).failure_times == [1e-3]


class TestReplayDistributionTrace:
    def test_replay_intervals_per_unit(self):
        spec = FaultModelSpec(
            distribution="replay",
            params={"intervals": [1e-3, 1e-3]},
            horizon_s=10e-3,
        )
        trace = generate_trace(spec, 2)
        # Both units replay the same intervals: failures at 1ms and 2ms each.
        assert trace.failure_times == pytest.approx([1e-3, 1e-3, 2e-3, 2e-3])

    def test_math_gamma_weibull_generation(self):
        spec = fault(distribution="weibull", params={"mtbf_s": 2e-3, "shape": 2.0})
        trace = generate_trace(spec, 8)
        assert len(trace) > 0
        assert all(math.isfinite(t) for t in trace.failure_times)


class TestConfigurationErrorsPropagate:
    def test_montecarlo_propagates_misconfiguration(self):
        # Runtime corner cases become per-replica error records, but a
        # configuration bug (identical in every replica) must fail loudly.
        from repro.faults.montecarlo import run_montecarlo

        spec = ScenarioSpec(
            name="misconfigured",
            workload=WorkloadSpec(kind="ring", nprocs=8, iterations=3),
            protocol=ProtocolSpec(
                name="coordinated",
                options={"checkpoint_interval": 2, "checkpoint_size_bytes": 1024},
            ),
            fault_model=fault(scope="node"),  # node scope without a topology
        )
        with pytest.raises(ConfigurationError):
            run_montecarlo(spec, replicas=3)


class TestMtbfScaleNormalisation:
    def test_int_keys_normalised_to_match_the_spec_hash(self):
        # json.dumps coerces int dict keys to strings, so {0: f} and
        # {"0": f} hash identically -- they must also DRAW identically.
        int_keys = fault(params={"mtbf_s": 2e-3, "mtbf_scale": {0: 0.05}})
        str_keys = fault(params={"mtbf_s": 2e-3, "mtbf_scale": {"0": 0.05}})
        assert int_keys == str_keys
        assert int_keys.stream_key() == str_keys.stream_key()
        assert generate_trace(int_keys, 4) == generate_trace(str_keys, 4)

    def test_invalid_scale_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            fault(params={"mtbf_s": 2e-3, "mtbf_scale": {"0": 0.0}})
        with pytest.raises(ConfigurationError):
            fault(params={"mtbf_s": 2e-3, "mtbf_scale": {"0": "fast"}})
        with pytest.raises(ConfigurationError):
            fault(params={"mtbf_s": 2e-3, "mtbf_scale": [0.5]})


class TestMigrationInjectorSynthesis:
    def _v1_simulate_record(self, status, failures):
        stats = {
            "protocol": "coordinated", "makespan": 1e-3, "events_processed": 10,
            "app_messages": 2, "app_bytes": 20, "logged_messages": 0,
            "logged_bytes": 0, "logged_fraction_bytes": 0.0,
            "control_messages": 0, "control_bytes": 0, "checkpoints_taken": 1,
            "checkpoint_bytes": 100, "failures_injected": 1,
            "ranks_rolled_back": 4, "rolled_back_fraction": 0.5,
            "recovery_time": 0.0, "extra": {},
        }
        return {
            "name": "v1", "analysis": "simulate", "spec_hash": "x" * 16,
            "spec": {"failures": failures},
            "result": {"status": status, "stats": stats,
                       "rank_results": {}, "rank_states": {}},
        }

    def test_completed_v1_failure_record_gains_injector_counters(self):
        from repro.results.migrate import migrate_record

        failures = [{"ranks": [3], "time": 1e-4}]
        record = migrate_record(self._v1_simulate_record("completed", failures))
        injector = record["result"]["metrics"]["sim"]["injector"]
        assert injector == {"armed_fires": 0, "deferred_fires": 0,
                            "disarmed_events": 0, "failed_ranks": 1,
                            "retargeted_events": 0}

    def test_incomplete_v1_record_gets_no_invented_counters(self):
        # An incomplete v1 run may genuinely have left a strike armed; the
        # migration must omit what it cannot reconstruct, not invent zeros.
        from repro.results.migrate import migrate_record

        failures = [{"ranks": [3], "at_iteration": 5}]
        record = migrate_record(self._v1_simulate_record("incomplete", failures))
        assert "injector" not in record["result"]["metrics"]["sim"]
