"""Unit tests for the discrete-event engine and Condition primitive."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import Condition, SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(3.0, order.append, "c")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(2.0, order.append, "b")
        assert engine.run() == "empty"
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        engine = SimulationEngine()
        order = []
        for label in "abcde":
            engine.schedule(1.0, order.append, label)
        engine.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_run(self):
        engine = SimulationEngine()
        order = []
        handle = engine.schedule(1.0, order.append, "x")
        engine.schedule(2.0, order.append, "y")
        handle.cancel()
        engine.run()
        assert order == ["y"]
        assert handle.cancelled

    def test_events_scheduled_during_run_execute(self):
        engine = SimulationEngine()
        order = []

        def first():
            order.append("first")
            engine.schedule(1.0, order.append, "second")

        engine.schedule(1.0, first)
        engine.run()
        assert order == ["first", "second"]
        assert engine.now == 2.0

    def test_run_until_time_stops_before_later_events(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, order.append, "a")
        engine.schedule(10.0, order.append, "b")
        reason = engine.run(until_time=5.0)
        assert reason == "until_time"
        assert order == ["a"]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_run_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i + 1), lambda: None)
        reason = engine.run(max_events=4)
        assert reason == "max_events"
        assert engine.events_processed == 4

    def test_stop_predicate(self):
        engine = SimulationEngine()
        hits = []
        for i in range(5):
            engine.schedule(float(i + 1), hits.append, i)
        reason = engine.run(stop_predicate=lambda: len(hits) >= 2)
        assert reason == "stopped"
        assert len(hits) == 2

    def test_step_returns_false_when_empty(self):
        engine = SimulationEngine()
        assert engine.step() is False

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2


class TestCondition:
    def test_waiter_called_on_fire_with_value(self):
        condition = Condition("test")
        seen = []
        condition.add_waiter(seen.append)
        assert not condition.fired
        condition.fire(42)
        assert condition.fired
        assert condition.value == 42
        assert seen == [42]

    def test_waiter_added_after_fire_called_immediately(self):
        condition = Condition()
        condition.fire("done")
        seen = []
        condition.add_waiter(seen.append)
        assert seen == ["done"]

    def test_double_fire_is_idempotent(self):
        condition = Condition()
        seen = []
        condition.add_waiter(seen.append)
        condition.fire(1)
        condition.fire(2)
        assert seen == [1]
        assert condition.value == 1

    def test_multiple_waiters_called_in_registration_order(self):
        condition = Condition()
        seen = []
        condition.add_waiter(lambda _: seen.append("a"))
        condition.add_waiter(lambda _: seen.append("b"))
        condition.fire()
        assert seen == ["a", "b"]

    def test_reset_rearms_condition(self):
        condition = Condition()
        condition.fire(1)
        condition.reset()
        assert not condition.fired
        seen = []
        condition.add_waiter(seen.append)
        condition.fire(2)
        assert seen == [2]
