"""Unit tests for the discrete-event engine and Condition primitive."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import Condition, SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(3.0, order.append, "c")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(2.0, order.append, "b")
        assert engine.run() == "empty"
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        engine = SimulationEngine()
        order = []
        for label in "abcde":
            engine.schedule(1.0, order.append, label)
        engine.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_run(self):
        engine = SimulationEngine()
        order = []
        handle = engine.schedule(1.0, order.append, "x")
        engine.schedule(2.0, order.append, "y")
        handle.cancel()
        engine.run()
        assert order == ["y"]
        assert handle.cancelled

    def test_events_scheduled_during_run_execute(self):
        engine = SimulationEngine()
        order = []

        def first():
            order.append("first")
            engine.schedule(1.0, order.append, "second")

        engine.schedule(1.0, first)
        engine.run()
        assert order == ["first", "second"]
        assert engine.now == 2.0

    def test_run_until_time_stops_before_later_events(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, order.append, "a")
        engine.schedule(10.0, order.append, "b")
        reason = engine.run(until_time=5.0)
        assert reason == "until_time"
        assert order == ["a"]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_run_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i + 1), lambda: None)
        reason = engine.run(max_events=4)
        assert reason == "max_events"
        assert engine.events_processed == 4

    def test_stop_predicate(self):
        engine = SimulationEngine()
        hits = []
        for i in range(5):
            engine.schedule(float(i + 1), hits.append, i)
        reason = engine.run(stop_predicate=lambda: len(hits) >= 2)
        assert reason == "stopped"
        assert len(hits) == 2

    def test_step_returns_false_when_empty(self):
        engine = SimulationEngine()
        assert engine.step() is False

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2


class TestHeapCompaction:
    """Lazy compaction of cancelled heap entries."""

    def test_cancel_heavy_schedule_triggers_compaction(self):
        engine = SimulationEngine()
        total = 4 * SimulationEngine.COMPACT_MIN_CANCELLED
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(total)]
        survivors = total // 4
        for handle in handles[survivors:]:
            handle.cancel()
        # Far more cancellations than live events: the heap must have been
        # rebuilt at least once, dropping the cancelled entries.
        assert engine.pending_events == survivors
        assert engine._entry_count() < total
        assert engine._cancelled < total - survivors

    def test_cancel_heavy_schedule_still_runs_survivors_in_order(self):
        engine = SimulationEngine()
        total = 3 * SimulationEngine.COMPACT_MIN_CANCELLED
        order = []
        handles = [
            engine.schedule(float(i + 1), order.append, i) for i in range(total)
        ]
        # Cancel everything except every third event, in scattered order.
        for i, handle in enumerate(handles):
            if i % 3 != 0:
                handle.cancel()
        assert engine.run() == "empty"
        assert order == list(range(0, total, 3))
        assert engine.pending_events == 0

    def test_run_until_time_with_cancelled_head_events(self):
        engine = SimulationEngine()
        order = []
        early = [engine.schedule(float(i + 1), order.append, i) for i in range(3)]
        engine.schedule(10.0, order.append, "late")
        for handle in early:
            handle.cancel()
        # The cancelled events head the heap; run must skip them without
        # executing anything and stop at the time bound.
        reason = engine.run(until_time=5.0)
        assert reason == "until_time"
        assert order == []
        assert engine.now == 5.0
        assert engine.pending_events == 1
        assert engine.run() == "empty"
        assert order == ["late"]

    def test_pending_events_consistent_after_peek_pops(self):
        engine = SimulationEngine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
        handles[0].cancel()
        handles[1].cancel()
        # until_time before the first live event: _peek_time pops the two
        # cancelled heads but executes nothing.
        assert engine.run(until_time=0.5) == "until_time"
        assert engine.pending_events == 3
        assert engine._entry_count() == 3
        assert engine._cancelled == 0
        assert engine.run() == "empty"
        assert engine.pending_events == 0
        assert engine.events_processed == 3

    def test_cancelling_an_executed_event_is_a_noop(self):
        engine = SimulationEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        live_before = engine.pending_events
        handle.cancel()
        assert not handle.cancelled
        assert engine.pending_events == live_before


class TestCondition:
    def test_waiter_called_on_fire_with_value(self):
        condition = Condition("test")
        seen = []
        condition.add_waiter(seen.append)
        assert not condition.fired
        condition.fire(42)
        assert condition.fired
        assert condition.value == 42
        assert seen == [42]

    def test_waiter_added_after_fire_called_immediately(self):
        condition = Condition()
        condition.fire("done")
        seen = []
        condition.add_waiter(seen.append)
        assert seen == ["done"]

    def test_double_fire_is_idempotent(self):
        condition = Condition()
        seen = []
        condition.add_waiter(seen.append)
        condition.fire(1)
        condition.fire(2)
        assert seen == [1]
        assert condition.value == 1

    def test_multiple_waiters_called_in_registration_order(self):
        condition = Condition()
        seen = []
        condition.add_waiter(lambda _: seen.append("a"))
        condition.add_waiter(lambda _: seen.append("b"))
        condition.fire()
        assert seen == ["a", "b"]

    def test_reset_rearms_condition(self):
        condition = Condition()
        condition.fire(1)
        condition.reset()
        assert not condition.fired
        seen = []
        condition.add_waiter(seen.append)
        condition.fire(2)
        assert seen == [2]


class TestNonFiniteTimes:
    """NaN/inf scheduling would silently corrupt the heap order: NaN compares
    false against everything, so a NaN-timed entry lands at an arbitrary heap
    position and breaks determinism.  All entry points must reject them."""

    @pytest.mark.parametrize("delay", [float("nan"), float("inf")])
    def test_schedule_rejects_non_finite_delay(self, delay):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(delay, lambda: None)
        assert engine.pending_events == 0

    @pytest.mark.parametrize(
        "time", [float("nan"), float("inf"), float("-inf")]
    )
    def test_schedule_at_rejects_non_finite_time(self, time):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_at(time, lambda: None)
        assert engine.pending_events == 0

    def test_schedule_many_rejects_non_finite_delay(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_many(
                [(0.0, lambda: None, ()), (float("nan"), lambda: None, ())]
            )
        # The valid entry scheduled before the bad one is kept.
        assert engine.pending_events == 1

    def test_queue_order_intact_after_rejected_nan(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, order.append, "b")
        with pytest.raises(SimulationError):
            engine.schedule(float("nan"), order.append, "poison")
        engine.schedule(1.0, order.append, "a")
        engine.run()
        assert order == ["a", "b"]


class TestScheduleMany:
    def test_batch_matches_individual_scheduling_order(self):
        individual = SimulationEngine()
        batched = SimulationEngine()
        seen_a, seen_b = [], []
        entries = [(1.0, seen_a.append, (i,)) for i in range(5)]
        for delay, cb, args in entries:
            individual.schedule(delay, cb, *args)
        batched.schedule_many((d, seen_b.append, a) for d, _cb, a in entries)
        individual.run()
        batched.run()
        assert seen_a == seen_b == [0, 1, 2, 3, 4]

    def test_batch_interleaves_with_single_schedules_by_time_then_seq(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, order.append, "x")
        engine.schedule_many([(1.0, order.append, ("y",)), (0.5, order.append, ("z",))])
        engine.schedule(1.0, order.append, "w")
        engine.run()
        assert order == ["z", "x", "y", "w"]
        assert engine.events_processed == 4

    def test_batch_updates_pending_count(self):
        engine = SimulationEngine()
        engine.schedule_many([(0.1, lambda: None, ()) for _ in range(7)])
        assert engine.pending_events == 7


class TestCompiledCoreSelection:
    """The engine facade (simulator.engine) and its build selector."""

    def test_facade_exports_a_consistent_build(self):
        from repro.simulator import engine

        assert isinstance(engine.COMPILED_CORE, bool)
        if engine.COMPILED_CORE:
            assert engine.SimulationEngine.__module__.endswith(
                "_engine_core_compiled"
            )
        else:
            assert engine.SimulationEngine.__module__.endswith("_engine_core")

    def test_repro_compiled_0_forces_the_pure_python_core(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_COMPILED="0")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.simulator import engine; "
                "print(engine.COMPILED_CORE, engine.SimulationEngine.__module__)",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.split()
        assert out[0] == "False"
        assert out[1].endswith("_engine_core")

    def test_both_builds_run_the_same_event_order(self):
        # The deterministic pin that must hold on either build: scheduling
        # pattern with ties, cancellations and nested scheduling drains in
        # one canonical order.
        engine = SimulationEngine()
        order = []

        def nested(tag):
            order.append(tag)
            if tag == "b":
                engine.schedule(0.0, order.append, "b-nested")

        engine.schedule(2.0, nested, "c")
        engine.schedule(1.0, nested, "b")
        handle = engine.schedule(1.5, nested, "dropped")
        engine.schedule(1.0, nested, "b-tie")
        handle.cancel()
        assert engine.run() == "empty"
        assert order == ["b", "b-tie", "b-nested", "c"]
