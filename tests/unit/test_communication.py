"""Unit tests for point-to-point communication, requests and collectives on
small hand-written applications."""

import pytest

from repro.errors import DeadlockError, InvalidOperationError
from repro.simulator.messages import ANY_SOURCE
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.workloads.base import Application


class _ScriptedApp(Application):
    """Application whose single iteration is provided as a callable."""

    name = "scripted"

    def __init__(self, nprocs, body, iterations=1):
        super().__init__(nprocs, iterations)
        self._body = body

    def setup(self, rank, nprocs):
        return {"out": []}

    def iteration(self, comm, rank, state, it):
        yield from self._body(comm, rank, state, it)

    def finalize(self, comm, rank, state):
        return state["out"]
        yield  # pragma: no cover


def run_script(nprocs, body, iterations=1, config=None):
    app = _ScriptedApp(nprocs, body, iterations)
    sim = Simulation(app, nprocs=nprocs, config=config)
    result = sim.run()
    return result


class TestPointToPoint:
    def test_blocking_send_recv(self):
        def body(comm, rank, state, it):
            if rank == 0:
                yield from comm.send(1, payload="ping", tag=1, size_bytes=32)
            else:
                message = yield from comm.recv(source=0, tag=1)
                state["out"].append(message.payload)

        result = run_script(2, body)
        assert result.rank_results[1] == ["ping"]

    def test_isend_wait_and_irecv(self):
        def body(comm, rank, state, it):
            if rank == 0:
                request = comm.isend(1, payload=123, tag=2, size_bytes=8)
                yield from comm.wait(request)
            else:
                request = comm.irecv(source=0, tag=2)
                message = yield from comm.wait(request)
                state["out"].append(message.payload)

        result = run_script(2, body)
        assert result.rank_results[1] == [123]

    def test_any_source_receive(self):
        def body(comm, rank, state, it):
            if rank == 0:
                for _ in range(2):
                    message = yield from comm.recv(source=ANY_SOURCE, tag=5)
                    state["out"].append(message.source)
            else:
                yield from comm.send(0, payload=rank, tag=5, size_bytes=8)

        result = run_script(3, body)
        assert sorted(result.rank_results[0]) == [1, 2]

    def test_tag_matching_keeps_messages_apart(self):
        def body(comm, rank, state, it):
            if rank == 0:
                yield from comm.send(1, payload="a", tag=10, size_bytes=8)
                yield from comm.send(1, payload="b", tag=11, size_bytes=8)
            else:
                second = yield from comm.recv(source=0, tag=11)
                first = yield from comm.recv(source=0, tag=10)
                state["out"] = [second.payload, first.payload]

        result = run_script(2, body)
        assert result.rank_results[1] == ["b", "a"]

    def test_fifo_order_per_channel_same_tag(self):
        def body(comm, rank, state, it):
            if rank == 0:
                for value in range(5):
                    yield from comm.send(1, payload=value, tag=3, size_bytes=8)
            else:
                for _ in range(5):
                    message = yield from comm.recv(source=0, tag=3)
                    state["out"].append(message.payload)

        result = run_script(2, body)
        assert result.rank_results[1] == [0, 1, 2, 3, 4]

    def test_sendrecv_exchanges_without_deadlock(self):
        def body(comm, rank, state, it):
            peer = 1 - rank
            message = yield from comm.sendrecv(peer, payload=rank, source=peer, tag=9,
                                               size_bytes=16)
            state["out"].append(message.payload)

        result = run_script(2, body)
        assert result.rank_results[0] == [1]
        assert result.rank_results[1] == [0]

    def test_waitall_and_waitany(self):
        def body(comm, rank, state, it):
            if rank == 0:
                reqs = [comm.isend(1, payload=i, tag=20 + i, size_bytes=8) for i in range(3)]
                yield from comm.waitall(reqs)
            else:
                reqs = [comm.irecv(source=0, tag=20 + i) for i in range(3)]
                index, message = yield from comm.waitany(reqs)
                state["out"].append(("any", message.payload))
                rest = [r for i, r in enumerate(reqs) if i != index and not r.complete]
                messages = yield from comm.waitall(rest)
                state["out"].extend(m.payload for m in messages)

        result = run_script(2, body)
        values = result.rank_results[1]
        assert values[0][0] == "any"
        assert len(values) >= 2

    def test_compute_advances_time(self):
        def body(comm, rank, state, it):
            yield from comm.compute(5e-3)

        result = run_script(1, body)
        assert result.makespan >= 5e-3

    def test_self_send_rejected(self):
        def body(comm, rank, state, it):
            yield from comm.send(0, payload=1)

        with pytest.raises(InvalidOperationError):
            run_script(1, body)

    def test_peer_out_of_range_rejected(self):
        def body(comm, rank, state, it):
            yield from comm.send(5, payload=1)

        with pytest.raises(InvalidOperationError):
            run_script(2, body)

    def test_negative_compute_rejected(self):
        def body(comm, rank, state, it):
            yield from comm.compute(-1.0)

        with pytest.raises(InvalidOperationError):
            run_script(1, body)

    def test_missing_message_deadlocks_with_report(self):
        def body(comm, rank, state, it):
            if rank == 1:
                yield from comm.recv(source=0, tag=99)

        with pytest.raises(DeadlockError) as excinfo:
            run_script(2, body)
        assert "rank 1" in str(excinfo.value)

    def test_deadlock_can_be_reported_without_raising(self):
        def body(comm, rank, state, it):
            if rank == 1:
                yield from comm.recv(source=0, tag=99)

        app = _ScriptedApp(2, body, 1)
        sim = Simulation(app, nprocs=2, config=SimulationConfig(raise_on_incomplete=False))
        result = sim.run()
        assert result.status == "deadlock"
        assert not result.completed


class TestCollectives:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 7, 8])
    def test_bcast_delivers_root_value(self, nprocs):
        def body(comm, rank, state, it):
            value = "payload" if rank == 2 % nprocs else None
            received = yield from comm.bcast(value, root=2 % nprocs, size_bytes=64)
            state["out"].append(received)

        result = run_script(nprocs, body)
        assert all(result.rank_results[r] == ["payload"] for r in range(nprocs))

    @pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
    def test_allreduce_sum(self, nprocs):
        def body(comm, rank, state, it):
            total = yield from comm.allreduce(rank + 1, size_bytes=8)
            state["out"].append(total)

        result = run_script(nprocs, body)
        expected = sum(range(1, nprocs + 1))
        assert all(result.rank_results[r] == [expected] for r in range(nprocs))

    def test_reduce_only_root_gets_result(self):
        def body(comm, rank, state, it):
            value = yield from comm.reduce(rank, root=1, size_bytes=8)
            state["out"].append(value)

        result = run_script(4, body)
        assert result.rank_results[1] == [0 + 1 + 2 + 3]
        assert result.rank_results[0] == [None]

    @pytest.mark.parametrize("nprocs", [2, 3, 6])
    def test_gather_and_allgather(self, nprocs):
        def body(comm, rank, state, it):
            gathered = yield from comm.gather(rank * 10, root=0, size_bytes=8)
            everyone = yield from comm.allgather(rank * 10, size_bytes=8)
            state["out"] = [gathered, everyone]

        result = run_script(nprocs, body)
        expected = [r * 10 for r in range(nprocs)]
        assert result.rank_results[0][0] == expected
        assert all(result.rank_results[r][1] == expected for r in range(nprocs))
        assert all(result.rank_results[r][0] is None for r in range(1, nprocs))

    def test_scatter(self):
        def body(comm, rank, state, it):
            values = [f"item{i}" for i in range(comm.size)] if rank == 0 else None
            mine = yield from comm.scatter(values, root=0, size_bytes=16)
            state["out"].append(mine)

        result = run_script(4, body)
        assert [result.rank_results[r][0] for r in range(4)] == [
            "item0", "item1", "item2", "item3"
        ]

    @pytest.mark.parametrize("nprocs", [2, 3, 4, 6])
    def test_alltoall(self, nprocs):
        def body(comm, rank, state, it):
            blocks = [f"{rank}->{dest}" for dest in range(nprocs)]
            received = yield from comm.alltoall(blocks, size_bytes=32)
            state["out"] = received

        result = run_script(nprocs, body)
        for rank in range(nprocs):
            assert result.rank_results[rank] == [f"{src}->{rank}" for src in range(nprocs)]

    def test_barrier_synchronises_progress(self):
        def body(comm, rank, state, it):
            if rank == 0:
                yield from comm.compute(1e-3)
            yield from comm.barrier()
            state["out"].append(comm.now)

        result = run_script(4, body)
        times = [result.rank_results[r][0] for r in range(4)]
        # Nobody leaves the barrier before the slowest rank reached it.
        assert min(times) >= 1e-3

    def test_alltoall_wrong_block_count_rejected(self):
        def body(comm, rank, state, it):
            yield from comm.alltoall([1, 2, 3], size_bytes=8)

        with pytest.raises(InvalidOperationError):
            run_script(2, body)


class TestTransportFifoClamp:
    """FIFO non-overtaking must survive float precision at large times."""

    def _transport(self):
        from repro.simulator.channel import Transport
        from repro.simulator.engine import SimulationEngine
        from repro.simulator.messages import Message
        from repro.simulator.network import MyrinetMXModel

        engine = SimulationEngine()
        delivered = []
        transport = Transport(engine, MyrinetMXModel(), delivered.append)
        return engine, transport, delivered, Message

    def test_fifo_clamp_not_absorbed_at_large_simulation_time(self):
        import math

        engine, transport, delivered, Message = self._transport()
        arrivals = []

        def send_pair():
            # A large message followed by a small one on the same channel:
            # the small one would overtake and must be clamped.
            arrivals.append(
                transport.transmit(Message(source=0, dest=1, tag=0, size_bytes=1 << 20))
            )
            arrivals.append(
                transport.transmit(Message(source=0, dest=1, tag=1, size_bytes=1))
            )

        # At t=1e5 s the old `previous + 1e-12` clamp was absorbed by float
        # precision (ulp(1e5) ~ 1.5e-11), silently breaking strict ordering.
        engine.schedule(1.0e5, send_pair)
        engine.run()
        assert arrivals[1] > arrivals[0]
        assert arrivals[1] == math.nextafter(arrivals[0], math.inf)
        assert [m.tag for m in delivered] == [0, 1]

    def test_fifo_order_preserved_for_many_ties(self):
        engine, transport, delivered, Message = self._transport()
        arrivals = []

        def send_burst():
            for i in range(100):
                arrivals.append(
                    transport.transmit(Message(source=0, dest=1, tag=i, size_bytes=8))
                )

        engine.schedule(7.0e4, send_burst)
        engine.run()
        assert [m.tag for m in delivered] == list(range(100))
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
