"""Snapshot/restore round-trip coverage for the checkpoint fast path.

Checkpoints used to deep-copy application state on every save and restore;
they now go through :meth:`Application.snapshot_state` /
:meth:`Application.restore_state` (structurally-shared snapshots).  These
tests pin the contract for every workload in the package:

* the snapshot round-trips to a state equal to what ``deepcopy`` would have
  captured (byte-identical recovery results are separately pinned by
  ``tests/integration/test_determinism_pins.py``);
* mutating the live state after a snapshot never leaks into the snapshot;
* mutating a restored state never leaks into the snapshot or into a second
  restore (repeated rollbacks to the same checkpoint stay independent).
"""

import copy

import pytest

from repro.errors import ConfigurationError
from repro.simulator.stable_storage import (
    ApplicationSnapshotStrategy,
    DeepcopySnapshotStrategy,
    StableStorage,
    snapshot_strategy_for,
)
from repro.workloads.base import freeze_state, thaw_state
from repro.workloads.master_worker import MasterWorkerApplication
from repro.workloads.nas import NAS_BENCHMARKS, make_nas_application
from repro.workloads.netpipe import PingPongApplication
from repro.workloads.ring import PipelineApplication, RingApplication
from repro.workloads.stencil import Stencil1DApplication, Stencil2DApplication


def all_workloads():
    apps = [
        RingApplication(nprocs=4, iterations=2),
        PipelineApplication(nprocs=4, iterations=2),
        Stencil1DApplication(nprocs=4, iterations=2),
        Stencil2DApplication(nprocs=4, iterations=2),
        PingPongApplication(nprocs=2, iterations=1, sizes=[1, 64], repeats=1),
        MasterWorkerApplication(nprocs=4, iterations=1),
    ]
    apps.extend(
        make_nas_application(name, nprocs=4, iterations=2) for name in NAS_BENCHMARKS
    )
    return apps


def _ids():
    return [type(a).__name__ for a in all_workloads()]


def _mutate(state):
    """Aggressively mutate a workload state dict in place."""
    for key, value in list(state.items()):
        if isinstance(value, list):
            value.append(-123.0)
        elif isinstance(value, dict):
            value[-99] = -123.0
        elif isinstance(value, (int, float)):
            state[key] = value + 1000.0


@pytest.mark.parametrize("app", all_workloads(), ids=_ids())
class TestWorkloadSnapshotRoundTrip:
    def test_roundtrip_equals_deepcopy_semantics(self, app):
        state = app.setup(0, app.nprocs)
        reference = copy.deepcopy(state)
        restored = app.restore_state(app.snapshot_state(state))
        assert restored == reference
        assert type(restored) is type(reference)

    def test_snapshot_isolated_from_live_mutations(self, app):
        state = app.setup(0, app.nprocs)
        reference = copy.deepcopy(state)
        snapshot = app.snapshot_state(state)
        _mutate(state)
        assert app.restore_state(snapshot) == reference

    def test_restores_are_mutually_independent(self, app):
        state = app.setup(0, app.nprocs)
        reference = copy.deepcopy(state)
        snapshot = app.snapshot_state(state)
        first = app.restore_state(snapshot)
        _mutate(first)
        assert app.restore_state(snapshot) == reference


class TestFreezeThaw:
    def test_plain_data_roundtrip(self):
        value = {
            "a": [1.0, 2.5, [3, "x"]],
            "b": {"nested": (1, 2), "set": {7, 8}},
            "c": None,
            4: b"bytes",
        }
        thawed = thaw_state(freeze_state(value))
        assert thawed == value

    def test_frozen_value_shares_scalars_but_not_containers(self):
        value = {"xs": [1, 2, 3]}
        snapshot = freeze_state(value)
        value["xs"].append(4)
        assert thaw_state(snapshot) == {"xs": [1, 2, 3]}

    def test_tuple_state_not_confused_with_tags(self):
        value = {"pair": ("d", "l")}  # payload that looks like our tags
        assert thaw_state(freeze_state(value)) == value

    def test_opaque_objects_fall_back_to_deepcopy(self):
        class Box:
            def __init__(self, items):
                self.items = items

        box = Box([1, 2])
        snapshot = freeze_state({"box": box})
        box.items.append(3)
        first = thaw_state(snapshot)
        assert first["box"].items == [1, 2]
        # Restores never alias the opaque leaf either.
        first["box"].items.append(99)
        assert thaw_state(snapshot)["box"].items == [1, 2]


class TestStorageStrategies:
    def test_strategy_for_prefers_application_snapshots(self):
        app = RingApplication(nprocs=2, iterations=1)
        assert isinstance(snapshot_strategy_for(app), ApplicationSnapshotStrategy)
        assert isinstance(snapshot_strategy_for(object()), DeepcopySnapshotStrategy)

    def test_storage_uses_application_strategy_end_to_end(self):
        app = RingApplication(nprocs=2, iterations=1)
        storage = StableStorage(
            write_bandwidth_bytes_per_s=None,
            snapshot_strategy=snapshot_strategy_for(app),
        )
        state = app.setup(0, 2)
        record = storage.save(rank=0, iteration=1, app_state=state, time=0.0)
        state["received"].append(9.9)
        restored = record.restore_app_state()
        assert restored == {"value": 1.0, "received": []}
        restored["received"].append(1.0)
        assert record.restore_app_state() == {"value": 1.0, "received": []}

    def test_default_strategy_is_deepcopy(self):
        storage = StableStorage(write_bandwidth_bytes_per_s=None)
        state = {"nested": [1, 2]}
        record = storage.save(rank=0, iteration=1, app_state=state, time=0.0)
        state["nested"].append(3)
        assert record.restore_app_state() == {"nested": [1, 2]}


class TestWriteBandwidthValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            StableStorage(write_bandwidth_bytes_per_s=0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            StableStorage(write_bandwidth_bytes_per_s=-1.0e9)

    def test_nan_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            StableStorage(write_bandwidth_bytes_per_s=float("nan"))

    def test_none_means_free_writes(self):
        storage = StableStorage(write_bandwidth_bytes_per_s=None)
        assert storage.write_cost(1 << 30) == 0.0

    def test_positive_bandwidth_prices_writes(self):
        storage = StableStorage(write_bandwidth_bytes_per_s=2.0)
        assert storage.write_cost(10) == pytest.approx(5.0)
