"""Unit tests for HydEE's building blocks: phase clock, RPP table, sender log,
per-rank state, configuration and the recovery orchestrator (Algorithm 4)."""

import pytest

from repro.core.config import HydEEConfig
from repro.core.message_log import SenderLog
from repro.core.phase import INITIAL_PHASE, PhaseClock
from repro.core.recovery_process import NOTIFY_SEND_LOG, NOTIFY_SEND_MSG, RecoveryOrchestrator
from repro.core.rpp import RPPTable
from repro.core.state import HydEERankState
from repro.errors import ConfigurationError, ProtocolError
from repro.simulator.messages import Message


class TestPhaseClock:
    def test_initial_values_match_paper(self):
        clock = PhaseClock()
        assert clock.date == 0
        assert clock.phase == INITIAL_PHASE == 1

    def test_send_increments_date_not_phase(self):
        clock = PhaseClock()
        date, phase = clock.on_send()
        assert (date, phase) == (1, 1)
        date, phase = clock.on_send()
        assert (date, phase) == (2, 1)

    def test_inter_cluster_delivery_bumps_phase_past_message(self):
        clock = PhaseClock()
        clock.on_deliver_inter(message_phase=1)
        assert clock.phase == 2  # max(1, 1+1), line 12 of Algorithm 1
        clock.on_deliver_inter(message_phase=1)
        assert clock.phase == 2  # already ahead
        clock.on_deliver_inter(message_phase=5)
        assert clock.phase == 6

    def test_intra_cluster_delivery_takes_max_only(self):
        clock = PhaseClock()
        clock.on_deliver_intra(message_phase=4)
        assert clock.phase == 4  # line 16 of Algorithm 1
        clock.on_deliver_intra(message_phase=2)
        assert clock.phase == 4

    def test_delivery_increments_date(self):
        clock = PhaseClock()
        clock.on_send()
        clock.on_deliver_intra(1)
        clock.on_deliver_inter(1)
        assert clock.date == 3

    def test_figure4_scenario_phases(self):
        # Reproduce the phase numbers annotated on Figure 4 of the paper for
        # process p5: initial phase 1, receives inter-cluster m3 of phase 2 ->
        # phase 3.
        p5 = PhaseClock()
        p5.on_deliver_inter(message_phase=2)
        assert p5.phase == 3

    def test_snapshot_roundtrip(self):
        clock = PhaseClock(date=7, phase=3)
        restored = PhaseClock.from_snapshot(clock.snapshot())
        assert (restored.date, restored.phase) == (7, 3)

    def test_reset(self):
        clock = PhaseClock(date=7, phase=3)
        clock.reset()
        assert (clock.date, clock.phase) == (0, INITIAL_PHASE)


class TestRPPTable:
    def test_observe_and_maxdate(self):
        rpp = RPPTable()
        rpp.observe(sender=3, send_date=5, phase=2)
        rpp.observe(sender=3, send_date=9, phase=3)
        assert rpp.max_date(3) == 9
        assert rpp.max_date(4) == 0

    def test_orphan_entries_after_restart_date(self):
        rpp = RPPTable()
        for date, phase in [(2, 1), (5, 2), (9, 3)]:
            rpp.observe(sender=1, send_date=date, phase=phase)
        assert rpp.orphan_entries(1, sender_restart_date=4) == [(5, 2), (9, 3)]
        assert rpp.orphan_entries(1, sender_restart_date=9) == []
        assert rpp.orphan_entries(2, sender_restart_date=0) == []

    def test_prune_channel(self):
        rpp = RPPTable()
        for date in (1, 2, 3, 4):
            rpp.observe(sender=0, send_date=date, phase=1)
        removed = rpp.prune_channel(0, up_to_date=2)
        assert removed == 2
        assert rpp.entry_count() == 2
        assert rpp.max_date(0) == 4

    def test_snapshot_roundtrip(self):
        rpp = RPPTable()
        rpp.observe(sender=2, send_date=4, phase=2)
        restored = RPPTable.from_snapshot(rpp.snapshot())
        assert restored.max_date(2) == 4
        assert restored.orphan_entries(2, 0) == [(4, 2)]
        assert RPPTable.from_snapshot(None).entry_count() == 0


class TestSenderLog:
    def _msg(self, dest, size=100):
        return Message(source=0, dest=dest, tag=1, size_bytes=size, payload="x")

    def test_add_and_entries_for(self):
        log = SenderLog()
        log.add(dest=1, date=3, phase=1, message=self._msg(1))
        log.add(dest=1, date=7, phase=2, message=self._msg(1))
        log.add(dest=2, date=8, phase=2, message=self._msg(2))
        assert len(log) == 3
        entries = log.entries_for(dest=1, after_date=3)
        assert [e.date for e in entries] == [7]
        assert log.entries_for(dest=1, after_date=0) == log.entries_for(1, -1)
        assert log.destinations() == [1, 2]

    def test_purge_acknowledged_frees_bytes(self):
        log = SenderLog()
        log.add(dest=1, date=3, phase=1, message=self._msg(1, 100))
        log.add(dest=1, date=7, phase=2, message=self._msg(1, 50))
        freed = log.purge_acknowledged(dest=1, up_to_date=3)
        assert freed == 100
        assert log.current_bytes == 50
        assert log.reclaimed_bytes == 100

    def test_snapshot_roundtrip_preserves_entries(self):
        log = SenderLog()
        log.add(dest=1, date=3, phase=1, message=self._msg(1))
        snapshot = log.snapshot()
        restored = SenderLog.from_snapshot(snapshot)
        assert len(restored) == 1
        entry = restored.entries[0]
        assert (entry.dest, entry.date, entry.phase) == (1, 3, 1)
        # Snapshots structurally share the (immutable) entries; replaying a
        # restored entry still goes through Message.clone_for_replay.
        assert entry.message.clone_for_replay().replayed
        assert not entry.message.replayed

    def test_snapshot_isolated_from_later_log_mutations(self):
        log = SenderLog()
        log.add(dest=1, date=3, phase=1, message=self._msg(1))
        snapshot = log.snapshot()
        log.add(dest=1, date=9, phase=2, message=self._msg(1))
        log.purge_acknowledged(dest=1, up_to_date=3)
        assert len(SenderLog.from_snapshot(snapshot)) == 1
        assert SenderLog.from_snapshot(snapshot).entries[0].date == 3

    def test_phases_for(self):
        log = SenderLog()
        log.add(dest=1, date=1, phase=2, message=self._msg(1))
        log.add(dest=1, date=2, phase=2, message=self._msg(1))
        log.add(dest=2, date=3, phase=4, message=self._msg(2))
        assert log.phases_for(log.entries) == [2, 4]


class TestHydEERankState:
    def test_checkpoint_payload_roundtrip(self):
        state = HydEERankState(rank=1, cluster=0)
        state.clock.on_send()
        state.rpp.observe(sender=5, send_date=2, phase=1)
        state.log.add(dest=5, date=1, phase=1,
                      message=Message(source=1, dest=5, tag=0, size_bytes=10))
        payload = state.checkpoint_payload()
        state.clock.on_send()
        state.restore(payload)
        assert state.clock.date == 1
        assert state.rpp.max_date(5) == 2
        assert len(state.log) == 1

    def test_restore_none_resets(self):
        state = HydEERankState(rank=1, cluster=0)
        state.clock.on_send()
        state.restore(None)
        assert state.clock.date == 0
        assert state.rpp.entry_count() == 0
        assert len(state.log) == 0

    def test_recovery_gate_logic(self):
        state = HydEERankState(rank=1, cluster=0)
        recovery = state.begin_recovery(rolled_back=True)
        recovery.awaiting_lastdate_from = {2, 3}
        assert not recovery.gate_open()
        recovery.notify_send_received = True
        assert not recovery.gate_open()  # still waiting for LastDate
        recovery.awaiting_lastdate_from.clear()
        assert recovery.gate_open()
        state.end_recovery()
        assert not state.in_recovery

    def test_non_rolled_back_gate_only_needs_notify(self):
        state = HydEERankState(rank=1, cluster=0)
        recovery = state.begin_recovery(rolled_back=False)
        assert not recovery.gate_open()
        recovery.notify_send_received = True
        assert recovery.gate_open()


class TestHydEEConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HydEEConfig(piggyback_bytes=-1)
        with pytest.raises(ConfigurationError):
            HydEEConfig(checkpoint_interval=0)
        with pytest.raises(ConfigurationError):
            HydEEConfig(checkpoint_size_bytes=-5)

    def test_with_clusters_copies_other_fields(self):
        config = HydEEConfig(checkpoint_interval=3, piggyback_bytes=16)
        updated = config.with_clusters([[0, 1], [2, 3]])
        assert updated.clusters == [[0, 1], [2, 3]]
        assert updated.checkpoint_interval == 3
        assert updated.piggyback_bytes == 16
        assert config.clusters is None


class TestRecoveryOrchestrator:
    def _make(self, ranks=(0, 1, 2)):
        notifications = []
        orchestrator = RecoveryOrchestrator(
            expected_ranks=ranks,
            notify=lambda kind, rank, phase: notifications.append((kind, rank, phase)),
            rolled_back_ranks=[0],
        )
        return orchestrator, notifications

    def _report_all(self, orchestrator, logs=None, orphans=None, phases=None):
        logs = logs or {}
        orphans = orphans or {}
        phases = phases or {}
        for rank in sorted(orchestrator.expected_ranks):
            orchestrator.handle("log_report", rank, {"phases": logs.get(rank, [])})
            orchestrator.handle("orphan_report", rank, {"phases": orphans.get(rank, [])})
            orchestrator.handle("own_phase", rank, {"phase": phases.get(rank, 1)})

    def test_no_orphans_releases_everything_immediately(self):
        orchestrator, notifications = self._make()
        self._report_all(orchestrator, logs={1: [2]}, phases={0: 1, 1: 3, 2: 2})
        kinds = [n[0] for n in notifications]
        assert kinds.count(NOTIFY_SEND_MSG) == 3
        assert kinds.count(NOTIFY_SEND_LOG) == 1
        assert orchestrator.complete

    def test_notifications_wait_for_all_reports(self):
        orchestrator, notifications = self._make()
        orchestrator.handle("log_report", 0, {"phases": []})
        orchestrator.handle("orphan_report", 0, {"phases": []})
        orchestrator.handle("own_phase", 0, {"phase": 1})
        assert notifications == []  # ranks 1 and 2 have not reported yet

    def test_phase_gating_respects_lower_phase_orphans(self):
        orchestrator, notifications = self._make()
        # Rank 1 has delivered two orphan messages of phase 2; rank 2 sits in
        # phase 3 and must not be released until they are regenerated.
        self._report_all(
            orchestrator,
            logs={1: [2], 2: [4]},
            orphans={1: [2, 2]},
            phases={0: 1, 1: 2, 2: 3},
        )
        released = {(kind, rank) for kind, rank, _ in notifications}
        assert (NOTIFY_SEND_MSG, 0) in released      # phase 1 <= lowest orphan phase
        assert (NOTIFY_SEND_MSG, 1) in released      # phase 2 == orphan phase (not blocked)
        assert (NOTIFY_SEND_MSG, 2) not in released  # blocked by phase-2 orphans
        assert (NOTIFY_SEND_LOG, 2) not in released  # log phase 4 blocked as well
        assert not orchestrator.complete

        orchestrator.handle("orphan_notification", 0, {"phase": 2})
        assert (NOTIFY_SEND_MSG, 2) not in {(k, r) for k, r, _ in notifications}
        orchestrator.handle("orphan_notification", 0, {"phase": 2})
        released = {(kind, rank) for kind, rank, _ in notifications}
        assert (NOTIFY_SEND_MSG, 2) in released
        assert (NOTIFY_SEND_LOG, 2) in released
        assert orchestrator.complete

    def test_unexpected_orphan_notification_raises(self):
        orchestrator, _ = self._make()
        self._report_all(orchestrator)
        assert orchestrator.complete
        with pytest.raises(ProtocolError):
            orchestrator.handle("orphan_notification", 0, {"phase": 1})

    def test_unknown_message_kind_rejected(self):
        orchestrator, _ = self._make()
        with pytest.raises(ProtocolError):
            orchestrator.handle("bogus", 0, {})

    def test_pending_summary_reports_missing_ranks(self):
        orchestrator, _ = self._make()
        orchestrator.handle("own_phase", 0, {"phase": 1})
        summary = orchestrator.pending_summary()
        assert summary["started"] is False
        assert 1 in summary["missing_reports"]
