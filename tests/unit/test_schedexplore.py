"""Unit tests for the schedule-space explorer's building blocks.

Covers the canonical fingerprinter (structural equality, engine-identity
stripping, address-dependent-repr rejection), the schedule policies
(decision recording, seeded determinism, adversarial bias, replay
fallback) and witnesses (round-trips, divergence matching, greedy
shrinking).  End-to-end exploration of real scenarios lives in
``tests/integration/test_schedule_explore.py``.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.schedexplore.fingerprint import fingerprint_value
from repro.schedexplore.policies import (
    AdversarialPolicy,
    FifoPolicy,
    RandomPolicy,
    ReplayPolicy,
    make_policy,
)
from repro.schedexplore.witness import (
    ScheduleWitness,
    same_divergence,
    shrink_witness,
)
from repro.simulator.messages import Message


class TestFingerprintCanonicalization:
    def test_dict_insertion_order_does_not_matter(self):
        forward = {"alpha": 1, "beta": [2, 3], "gamma": {"x": 4}}
        backward = {"gamma": {"x": 4}, "beta": [2, 3], "alpha": 1}
        assert fingerprint_value(forward) == fingerprint_value(backward)

    def test_set_iteration_order_does_not_matter(self):
        assert fingerprint_value({3, 1, 2}) == fingerprint_value({2, 3, 1})
        assert fingerprint_value({"b", "a"}) == fingerprint_value({"a", "b"})

    def test_tuple_and_list_hash_identically(self):
        assert fingerprint_value((1, "x", 2.5)) == fingerprint_value([1, "x", 2.5])

    def test_numpy_scalars_and_arrays_match_python_values(self):
        assert fingerprint_value(np.int64(7)) == fingerprint_value(7)
        assert fingerprint_value(np.float64(1.5)) == fingerprint_value(1.5)
        assert fingerprint_value(np.array([1, 2, 3])) == fingerprint_value([1, 2, 3])

    def test_distinct_values_hash_differently(self):
        assert fingerprint_value({"a": 1}) != fingerprint_value({"a": 2})
        assert fingerprint_value("1") != fingerprint_value(1)
        assert fingerprint_value(b"x") != fingerprint_value("x")
        # bools are not conflated with 0/1.
        assert fingerprint_value(True) != fingerprint_value(1)
        assert fingerprint_value(False) != fingerprint_value(0)

    def test_message_engine_identity_is_stripped(self):
        # Same content, different engine-assigned msg_id / transport times:
        # the fingerprint must not see the difference.
        a = Message(source=0, dest=1, tag=7, size_bytes=64, payload="p", msg_id=10)
        b = Message(source=0, dest=1, tag=7, size_bytes=64, payload="p", msg_id=9999)
        a.send_time, b.send_time = 1.0, 2.0
        assert fingerprint_value(a) == fingerprint_value(b)

    def test_message_content_is_not_stripped(self):
        a = Message(source=0, dest=1, tag=7, size_bytes=64, payload="p", msg_id=1)
        b = Message(source=0, dest=1, tag=7, size_bytes=64, payload="q", msg_id=1)
        assert fingerprint_value(a) != fingerprint_value(b)

    def test_address_dependent_repr_is_rejected(self):
        with pytest.raises(TypeError, match="address-dependent"):
            fingerprint_value(object())


def _group(n, callbacks=None):
    """A synthetic equal-time group of queue entries [time, seq, cb, args, state]."""
    callbacks = callbacks or [None] * n
    return [[0.0, seq, callbacks[seq], (), 0] for seq in range(n)]


def _plain_callback():
    pass


def _fire_guard_window():  # qualname matches an adversary marker ("fire")
    pass


class TestPolicies:
    def test_make_policy_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown schedule policy"):
            make_policy("bogus")

    def test_fifo_policy_records_no_decisions(self):
        policy = FifoPolicy()
        for _ in range(5):
            assert policy.choose(0.0, _group(4)) == 0
        assert policy.tie_dispatches == 5
        assert policy.decisions == {}

    def test_random_policy_is_seed_deterministic(self):
        runs = []
        for _ in range(2):
            policy = RandomPolicy(seed=5)
            picks = [policy.choose(0.0, _group(6)) for _ in range(40)]
            runs.append((picks, dict(policy.decisions)))
        assert runs[0] == runs[1]
        # A different seed explores a different schedule.
        other = RandomPolicy(seed=6)
        other_picks = [other.choose(0.0, _group(6)) for _ in range(40)]
        assert other_picks != runs[0][0]

    def test_decisions_record_chosen_seq_not_index(self):
        policy = RandomPolicy(seed=0)
        group = _group(4)
        index = policy.choose(0.0, group)
        if index != 0:
            assert policy.decisions[0] == group[index][1]  # entry seq
        else:
            assert 0 not in policy.decisions

    def test_adversarial_policy_prefers_marked_callbacks(self):
        policy = AdversarialPolicy(seed=0, bias=1.0)
        group = _group(3, [_plain_callback, _fire_guard_window, _plain_callback])
        picks = {policy.choose(0.0, group) for _ in range(10)}
        assert picks == {1}

    def test_adversarial_policy_is_anti_fifo_without_marks(self):
        policy = AdversarialPolicy(seed=0, bias=1.0)
        group = _group(4, [_plain_callback] * 4)
        picks = {policy.choose(0.0, group) for _ in range(10)}
        assert picks == {3}

    def test_replay_policy_applies_recorded_seqs_and_falls_back_to_fifo(self):
        policy = ReplayPolicy({0: 2, 1: 99})
        assert policy.choose(0.0, _group(4)) == 2  # seq 2 lives at index 2
        assert policy.choose(0.0, _group(4)) == 0  # seq 99 absent: FIFO
        assert policy.choose(0.0, _group(4)) == 0  # tie 2 unrecorded: FIFO


def _divergence(kind="final-fingerprint", index=None, observed="got"):
    return {"kind": kind, "index": index, "baseline": "want", "observed": observed}


class TestSameDivergence:
    def test_matches_on_kind_and_index_only(self):
        assert same_divergence(_divergence(observed="x"), _divergence(observed="y"))
        assert not same_divergence(_divergence(), _divergence(kind="status"))
        assert not same_divergence(
            _divergence("checkpoint-fingerprint", 1),
            _divergence("checkpoint-fingerprint", 2),
        )

    def test_none_never_matches(self):
        assert not same_divergence(None, _divergence())
        assert not same_divergence(_divergence(), None)
        assert not same_divergence(None, None)


class TestWitness:
    def test_dict_round_trip_preserves_int_decision_keys(self):
        witness = ScheduleWitness(
            policy="random",
            seed=3,
            decisions={17: 42, 4: 8},
            divergence=_divergence(),
            scenario={"name": "s"},
            original_decisions=12,
            metadata={"label": "random-3"},
        )
        data = witness.to_dict()
        assert set(data["decisions"]) == {"4", "17"}  # JSON-safe string keys
        back = ScheduleWitness.from_dict(data)
        assert back == witness

    def test_file_round_trip(self, tmp_path):
        witness = ScheduleWitness(
            policy="adversarial", seed=0, decisions={1: 2}, divergence=_divergence()
        )
        path = str(tmp_path / "w.witness.json")
        witness.save(path)
        assert ScheduleWitness.load(path) == witness


class TestShrinkWitness:
    def _witness(self, decisions):
        return ScheduleWitness(
            policy="random", seed=0, decisions=dict(decisions),
            divergence=_divergence(),
        )

    def test_drops_irrelevant_decisions(self):
        # Only decision 7 matters; the rest must be shrunk away.
        def diverges(decisions):
            return _divergence() if 7 in decisions else None

        shrunk = shrink_witness(self._witness({1: 10, 4: 11, 7: 12, 9: 13}), diverges)
        assert shrunk.decisions == {7: 12}
        assert shrunk.original_decisions == 4
        assert same_divergence(shrunk.divergence, _divergence())

    def test_keeps_jointly_necessary_decisions(self):
        def diverges(decisions):
            return _divergence() if {1, 4} <= set(decisions) else None

        shrunk = shrink_witness(self._witness({1: 10, 4: 11, 9: 13}), diverges)
        assert shrunk.decisions == {1: 10, 4: 11}

    def test_does_not_chase_a_different_divergence(self):
        # Dropping decision 7 still diverges, but at a different place; the
        # shrinker must keep 7 rather than redefine what it is witnessing.
        def diverges(decisions):
            if 7 in decisions:
                return _divergence()
            return _divergence("checkpoint-fingerprint", 2)

        shrunk = shrink_witness(self._witness({3: 9, 7: 12}), diverges)
        assert 7 in shrunk.decisions
        assert shrunk.divergence["kind"] == "final-fingerprint"
