"""Unit tests for the communication graph, metrics and partitioners."""

import numpy as np
import pytest

from repro.clustering import (
    CommunicationGraph,
    block_partition,
    choose_clustering,
    cluster_application,
    evaluate_clustering,
    greedy_agglomerative,
    partition,
    refine,
    repartition_online,
    rollback_fraction,
    sweep_cluster_counts,
    preset_cluster_count,
)
from repro.errors import ClusteringError
from repro.simulator.trace import TraceRecorder
from repro.simulator.messages import Message
from repro.workloads import Stencil2DApplication


def two_blocks_matrix(n=8, heavy=1000.0, light=1.0):
    """Two groups of n/2 ranks with heavy intra-group and light inter-group traffic."""
    matrix = np.full((n, n), light)
    np.fill_diagonal(matrix, 0.0)
    half = n // 2
    matrix[:half, :half] = heavy
    matrix[half:, half:] = heavy
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestCommunicationGraph:
    def test_validation(self):
        with pytest.raises(ClusteringError):
            CommunicationGraph(volume=np.zeros((2, 3)))
        with pytest.raises(ClusteringError):
            CommunicationGraph(volume=-np.ones((2, 2)))

    def test_from_trace(self):
        trace = TraceRecorder()
        trace.record_send(Message(source=0, dest=1, tag=0, size_bytes=100), 0.0)
        trace.record_send(Message(source=1, dest=0, tag=0, size_bytes=40), 0.0)
        graph = CommunicationGraph.from_trace(trace, nprocs=2)
        assert graph.total_bytes == 140
        assert graph.channel_bytes(0, 1) == 100
        assert graph.messages[0, 1] == 1

    def test_from_application_uses_analytic_matrix(self):
        app = Stencil2DApplication(nprocs=16, iterations=2)
        graph = CommunicationGraph.from_application(app)
        assert graph.nprocs == 16
        assert graph.total_bytes > 0

    def test_cut_bytes(self):
        graph = CommunicationGraph.from_matrix(two_blocks_matrix(4, heavy=10, light=1))
        clusters = [[0, 1], [2, 3]]
        # inter-group entries: 2x2 block in each direction at weight 1 -> 8.
        assert graph.cut_bytes(clusters) == pytest.approx(8.0)
        with pytest.raises(ClusteringError):
            graph.cut_bytes([[0, 1]])

    def test_to_networkx_symmetric_weights(self):
        graph = CommunicationGraph.from_matrix(np.array([[0, 5], [3, 0]], dtype=float))
        nx_graph = graph.to_networkx()
        assert nx_graph[0][1]["weight"] == pytest.approx(8.0)

    def test_heaviest_channels(self):
        graph = CommunicationGraph.from_matrix(two_blocks_matrix(4, heavy=10, light=1))
        top = graph.heaviest_channels(k=2)
        assert len(top) == 2
        assert all(weight == pytest.approx(20.0) for _, _, weight in top)


class TestMetrics:
    def test_rollback_fraction_balanced(self):
        assert rollback_fraction([4, 4, 4, 4], 16) == pytest.approx(0.25)

    def test_rollback_fraction_unbalanced_is_larger(self):
        balanced = rollback_fraction([8, 8], 16)
        skewed = rollback_fraction([12, 4], 16)
        assert skewed > balanced

    def test_evaluate_clustering(self):
        graph = CommunicationGraph.from_matrix(two_blocks_matrix(8))
        metrics = evaluate_clustering(graph, [[0, 1, 2, 3], [4, 5, 6, 7]])
        assert metrics.num_clusters == 2
        assert metrics.rollback_fraction == pytest.approx(0.5)
        assert 0 < metrics.logged_fraction < 0.05  # only the light edges cross
        with pytest.raises(ClusteringError):
            evaluate_clustering(graph, [[0, 1], [2, 3]])  # not a partition


class TestPartitioners:
    def test_block_partition_sizes(self):
        clusters = block_partition(10, 3)
        assert [len(c) for c in clusters] == [4, 3, 3]
        assert sorted(r for c in clusters for r in c) == list(range(10))
        with pytest.raises(ClusteringError):
            block_partition(4, 9)

    def test_greedy_finds_natural_groups(self):
        matrix = two_blocks_matrix(8)
        clusters = greedy_agglomerative(matrix, 2)
        assert sorted(sorted(c) for c in clusters) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_greedy_respects_requested_count(self):
        matrix = two_blocks_matrix(12)
        for k in (2, 3, 4, 6, 12):
            clusters = greedy_agglomerative(matrix, k)
            assert len(clusters) == k
            assert sorted(r for c in clusters for r in c) == list(range(12))

    def test_refine_reduces_or_keeps_cut(self):
        graph = CommunicationGraph.from_matrix(two_blocks_matrix(8))
        bad = [[0, 1, 2, 4], [3, 5, 6, 7]]  # 3 and 4 swapped across the natural cut
        refined = refine(graph, bad)
        assert graph.cut_bytes(refined) <= graph.cut_bytes(bad)

    def test_partition_returns_metrics_and_valid_partition(self):
        result = partition(two_blocks_matrix(8), 2, method="auto")
        assert result.metrics.num_clusters == 2
        assert sorted(r for c in result.clusters for r in c) == list(range(8))
        assert result.metrics.logged_fraction < 0.05

    def test_partition_invalid_method(self):
        with pytest.raises(ClusteringError):
            partition(two_blocks_matrix(4), 2, method="does-not-exist")

    def test_cluster_application_partitions_all_ranks(self):
        app = Stencil2DApplication(nprocs=16, iterations=2)
        clusters = cluster_application(app, num_clusters=4)
        assert sorted(r for c in clusters for r in c) == list(range(16))
        assert len(clusters) == 4

    def test_sweep_cluster_counts_monotone_rollback(self):
        results = sweep_cluster_counts(two_blocks_matrix(16), [2, 4, 8])
        rollbacks = [r.metrics.rollback_fraction for r in results]
        assert rollbacks == sorted(rollbacks, reverse=True)

    def test_choose_clustering_respects_rollback_budget(self):
        result = choose_clustering(two_blocks_matrix(16), max_rollback_fraction=0.3)
        assert result.metrics.rollback_fraction <= 0.3 + 1e-9

    def test_repartition_online_keeps_partition_valid(self):
        matrix = two_blocks_matrix(8)
        initial = block_partition(8, 2)
        result = repartition_online(initial, matrix)
        assert sorted(r for c in result.clusters for r in c) == list(range(8))
        assert result.metrics.num_clusters == 2

    def test_preset_cluster_counts(self):
        assert preset_cluster_count("BT") == 5
        assert preset_cluster_count("ft") == 2
