"""Unit tests for the network performance models."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator.network import (
    EthernetTCPModel,
    MyrinetMXModel,
    NetworkModel,
    PiggybackPolicy,
    netpipe_sizes,
    pingpong_half_round_trip,
)


class TestLatencyPlateaus:
    def test_small_message_latency_matches_paper(self):
        model = MyrinetMXModel()
        # Section V-C: ~3.3 us for 1-32 bytes, ~4 us afterwards.
        assert model.latency(1) == pytest.approx(3.3e-6)
        assert model.latency(32) == pytest.approx(3.3e-6)
        assert model.latency(33) == pytest.approx(4.0e-6)

    def test_latency_is_non_decreasing_in_size(self):
        model = MyrinetMXModel()
        sizes = [1, 16, 32, 64, 512, 2048, 16384, 1 << 20]
        latencies = [model.latency(s) for s in sizes]
        assert latencies == sorted(latencies)

    def test_transfer_time_monotone(self):
        model = MyrinetMXModel()
        previous = 0.0
        for size in [1, 64, 1024, 65536, 1 << 20, 8 << 20]:
            current = model.transfer_time(size)
            assert current > previous
            previous = current

    def test_rendezvous_adds_round_trip_above_eager_threshold(self):
        model = MyrinetMXModel()
        below = model.transfer_time(model.eager_threshold_bytes)
        above = model.transfer_time(model.eager_threshold_bytes + 1)
        extra = above - below
        assert extra >= 2.0 * model.min_latency()

    def test_bandwidth_approached_for_large_messages(self):
        model = MyrinetMXModel()
        size = 64 << 20
        effective = size / model.transfer_time(size)
        assert effective == pytest.approx(model.bandwidth_bytes_per_s, rel=0.05)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ConfigurationError):
            NetworkModel(latency_plateaus=[(32, 1e-6)])  # no catch-all entry


class TestPiggybackCost:
    def test_none_policy_is_free(self):
        model = MyrinetMXModel()
        assert model.piggyback_cost(100, 12, PiggybackPolicy.NONE) == (0, 0.0)

    def test_inline_adds_bytes_only(self):
        model = MyrinetMXModel()
        extra_bytes, extra_latency = model.piggyback_cost(100, 12, PiggybackPolicy.INLINE)
        assert extra_bytes == 12
        assert extra_latency == 0.0

    def test_separate_costs_injection_overhead_only(self):
        model = MyrinetMXModel()
        extra_bytes, extra_latency = model.piggyback_cost(4096, 12, PiggybackPolicy.SEPARATE)
        assert extra_bytes == 0
        assert extra_latency == pytest.approx(model.send_overhead_s)

    def test_hybrid_policy_switches_at_1kib(self):
        model = MyrinetMXModel()
        small = model.piggyback_cost(512, 12, PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE)
        large = model.piggyback_cost(2048, 12, PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE)
        assert small == (12, 0.0)
        assert large[0] == 0 and large[1] > 0.0

    def test_zero_piggyback_bytes_is_free(self):
        model = MyrinetMXModel()
        assert model.piggyback_cost(100, 0, PiggybackPolicy.INLINE) == (0, 0.0)


class TestLoggingCost:
    def test_memcpy_mostly_overlapped(self):
        model = MyrinetMXModel()
        visible = model.memcpy_time(1 << 20)
        raw = (1 << 20) / model.memcpy_bandwidth_bytes_per_s
        assert visible < raw
        assert visible == pytest.approx(raw * (1 - model.memcpy_overlap_fraction))

    def test_logging_cost_small_vs_transfer(self):
        # The paper's claim: sender-based logging is invisible because the
        # copy overlaps with the (slower) network transfer.
        model = MyrinetMXModel()
        for size in (1024, 65536, 1 << 20):
            assert model.memcpy_time(size) < 0.05 * model.transfer_time(size)


class TestHelpers:
    def test_pingpong_half_round_trip_includes_overheads(self):
        model = MyrinetMXModel()
        value = pingpong_half_round_trip(model, 8)
        assert value == pytest.approx(
            model.send_overhead_s + model.transfer_time(8) + model.recv_overhead_s
        )

    def test_netpipe_sizes_cover_range(self):
        sizes = netpipe_sizes(8 * 1024 * 1024)
        assert sizes[0] == 1
        assert sizes[-1] == 8 * 1024 * 1024
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)

    def test_netpipe_sizes_perturb_above_16_bytes(self):
        sizes = netpipe_sizes(1024)
        # Powers of two up to 16 B are probed exactly; above 16 B each power
        # of two gets +/-3-byte probe points (the NetPIPE plateau-edge trick).
        assert [s for s in sizes if s <= 16] == [1, 2, 4, 8, 16]
        for power in (32, 64, 128, 256, 512, 1024):
            assert power in sizes
            assert power - 3 in sizes
        assert 1024 + 3 not in sizes  # beyond max_bytes
        assert 512 + 3 in sizes

    def test_netpipe_sizes_perturbation_configurable(self):
        plain = netpipe_sizes(256, perturbation=0)
        assert plain == [1, 2, 4, 8, 16, 32, 64, 128, 256]
        wide = netpipe_sizes(256, perturbation=5)
        assert 27 in wide and 37 in wide

    def test_ethernet_model_is_slower_than_myrinet(self):
        myrinet = MyrinetMXModel()
        ethernet = EthernetTCPModel()
        assert ethernet.latency(1) > myrinet.latency(1)
        assert ethernet.bandwidth_bytes_per_s < myrinet.bandwidth_bytes_per_s
