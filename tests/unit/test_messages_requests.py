"""Unit tests for messages, matching and request handles."""

import pytest

from repro.errors import InvalidOperationError
from repro.simulator.messages import ANY_SOURCE, ANY_TAG, ChannelKey, Message, MessageKind
from repro.simulator.requests import RecvRequest, RequestState, SendRequest


class TestMessage:
    def test_matches_exact_source_and_tag(self):
        message = Message(source=2, dest=5, tag=7, size_bytes=10)
        assert message.matches(2, 7)
        assert not message.matches(3, 7)
        assert not message.matches(2, 8)

    def test_matches_wildcards(self):
        message = Message(source=2, dest=5, tag=7, size_bytes=10)
        assert message.matches(ANY_SOURCE, 7)
        assert message.matches(2, ANY_TAG)
        assert message.matches(ANY_SOURCE, ANY_TAG)

    def test_message_ids_unique_and_increasing(self):
        first = Message(source=0, dest=1, tag=0, size_bytes=1)
        second = Message(source=0, dest=1, tag=0, size_bytes=1)
        assert second.msg_id > first.msg_id

    def test_total_bytes_includes_piggyback(self):
        message = Message(source=0, dest=1, tag=0, size_bytes=100)
        message.piggyback_bytes = 12
        assert message.total_bytes == 112

    def test_clone_for_replay_copies_metadata(self):
        message = Message(source=0, dest=1, tag=3, size_bytes=64, payload="x",
                          kind=MessageKind.APP)
        message.piggyback = {"date": 4, "phase": 2}
        message.piggyback_bytes = 12
        message.inter_cluster = True
        clone = message.clone_for_replay()
        assert clone.replayed and not message.replayed
        assert clone.msg_id != message.msg_id
        assert clone.piggyback == {"date": 4, "phase": 2}
        assert clone.payload == "x"
        assert clone.inter_cluster is True
        # The clone's piggyback is an independent dict.
        clone.piggyback["date"] = 99
        assert message.piggyback["date"] == 4

    def test_channel_key_reversed(self):
        key = ChannelKey(1, 2)
        assert key.reversed() == ChannelKey(2, 1)


class TestRequests:
    def test_send_request_completion(self):
        message = Message(source=0, dest=1, tag=0, size_bytes=1)
        request = SendRequest(0, message)
        assert request.state is RequestState.PENDING
        request._complete(None, 1.0)
        assert request.complete
        assert request.completion_time == 1.0

    def test_double_completion_raises(self):
        request = SendRequest(0, Message(source=0, dest=1, tag=0, size_bytes=1))
        request._complete(None, 1.0)
        with pytest.raises(InvalidOperationError):
            request._complete(None, 2.0)

    def test_cancel_prevents_completion_and_waiters(self):
        request = RecvRequest(1, source=0, tag=5)
        seen = []
        request.add_waiter(seen.append)
        request.cancel()
        request._complete("late", 3.0)
        assert request.cancelled
        assert not request.complete
        # Cancellation silently drops registered waiters and later completions.
        assert seen == []

    def test_waiter_called_on_completion(self):
        request = RecvRequest(1, source=0, tag=5)
        seen = []
        request.add_waiter(lambda req: seen.append(req.value))
        message = Message(source=0, dest=1, tag=5, size_bytes=4, payload="hello")
        request._complete(message, 2.0)
        assert seen == [message]

    def test_waiter_added_after_completion_runs_immediately(self):
        request = RecvRequest(1, source=0, tag=5)
        request._complete("value", 2.0)
        seen = []
        request.add_waiter(lambda req: seen.append(req.value))
        assert seen == ["value"]

    def test_recv_request_matching(self):
        request = RecvRequest(3, source=ANY_SOURCE, tag=9)
        good = Message(source=7, dest=3, tag=9, size_bytes=1)
        wrong_dest = Message(source=7, dest=4, tag=9, size_bytes=1)
        wrong_tag = Message(source=7, dest=3, tag=8, size_bytes=1)
        assert request.matches(good)
        assert not request.matches(wrong_dest)
        assert not request.matches(wrong_tag)

    def test_test_is_non_destructive(self):
        request = RecvRequest(0, source=1, tag=0)
        assert request.test() is False
        request._complete("x", 0.0)
        assert request.test() is True
        assert request.test() is True
