"""Unit tests for the repro.results subsystem: metric trees, run results,
table schemas and the protocol duplicate-metric detection."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.results import (
    Column,
    MetricSet,
    RunResult,
    TableSchema,
    make_payload,
    pivot_rows,
    register_table,
    units_for,
)
from repro.results.tables import available_tables, build_table, get_table


class TestMetricSet:
    def test_set_get_roundtrip(self):
        m = MetricSet()
        m.set("sim.makespan", 1.5)
        m.set("protocol.name", "hydee")
        m.set("links.tiers.inter-cluster.bytes", 1024)
        assert m.get("sim.makespan") == 1.5
        assert m.get("links.tiers.inter-cluster.bytes") == 1024
        assert m.get("missing.path", 42) == 42

    def test_mapping_values_flatten(self):
        m = MetricSet()
        m.set("network.topology", {"nodes": 4, "clusters": 2})
        assert m.get("network.topology.nodes") == 4
        # a namespace lookup returns the nested dict
        assert m.get("network.topology") == {"nodes": 4, "clusters": 2}

    def test_duplicate_metric_raises(self):
        m = MetricSet()
        m.set("protocol.recoveries", 1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            m.set("protocol.recoveries", 2)

    def test_leaf_namespace_conflicts_raise(self):
        m = MetricSet()
        m.set("sim.makespan", 1.0)
        with pytest.raises(ConfigurationError):
            m.set("sim.makespan.seconds", 1.0)     # leaf used as namespace
        m2 = MetricSet()
        m2.set("links.tiers.inter", 1)
        with pytest.raises(ConfigurationError):
            m2.set("links.tiers", 2)               # namespace used as leaf

    def test_empty_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="empty mapping"):
            MetricSet().set("links.tiers", {})

    def test_invalid_paths_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricSet().set("", 1)
        with pytest.raises(ConfigurationError):
            MetricSet().set("sim..makespan", 1)

    def test_tree_roundtrip_is_strict(self):
        m = MetricSet()
        m.set("sim.makespan", 2.0)
        m.set("sim.app_messages", 7)
        m.set("protocol.rollback_events", [{"time": 0.1}])
        tree = m.to_tree()
        assert MetricSet.from_tree(tree) == m
        # tree form is what JSON stores: survive a JSON cycle too
        assert MetricSet.from_tree(json.loads(json.dumps(tree))) == m

    def test_items_sorted_and_subset(self):
        m = MetricSet({"b.y": 1, "a.x": 2, "b.z": 3})
        assert [path for path, _ in m.items()] == ["a.x", "b.y", "b.z"]
        assert [path for path, _ in m.subset("b").items()] == ["b.y", "b.z"]

    def test_merge_detects_cross_namespace_duplicates(self):
        a = MetricSet({"protocol.name": "x"})
        b = MetricSet({"protocol.name": "y"})
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_units_catalog(self):
        assert units_for("sim.makespan") == "s"
        assert units_for("protocol.logged_bytes") == "B"
        assert units_for("clustering.rollback_pct") == "%"
        assert units_for("protocol.name") is None
        m = MetricSet({"sim.makespan": 1.0})
        (metric,) = m.metrics()
        assert metric.units == "s" and metric.namespace == "sim"


class TestRunResult:
    def record(self):
        return {
            "name": "r1",
            "analysis": "simulate",
            "spec_hash": "abc123",
            "spec": {
                "name": "r1",
                "workload": {"kind": "ring", "nprocs": 4},
                "protocol": {"name": "hydee"},
                "tags": {"experiment": "e2e", "benchmark": "cg"},
            },
            "result": make_payload(
                "completed",
                MetricSet({"sim.makespan": 0.5, "protocol.name": "hydee"}),
                {"rank_states": {"0": "done"}},
            ),
        }

    def test_record_roundtrip(self):
        record = self.record()
        run = RunResult.from_record(record)
        assert run.to_record() == record
        assert run.completed
        assert run.metric("sim.makespan") == 0.5
        assert run.data["rank_states"] == {"0": "done"}

    def test_field_resolution_order(self):
        run = RunResult.from_record(self.record())
        assert run.field("protocol") == "hydee"          # alias -> spec
        assert run.field("workload") == "ring"
        assert run.field("nprocs") == 4
        assert run.field("tags.benchmark") == "cg"
        assert run.field("sim.makespan") == 0.5          # metric fallback
        assert run.field("status") == "completed"
        assert run.field("nope.nope", "dflt") == "dflt"

    def test_v1_record_rejected_when_strict(self):
        bad = self.record()
        bad["result"] = {"status": "completed", "stats": {}}
        with pytest.raises(ConfigurationError, match="v2"):
            RunResult.from_record(bad)
        lenient = RunResult.from_record(bad, strict=False)
        assert lenient.status == "completed"
        assert len(lenient.metrics) == 0


class TestTableSchema:
    def schema(self):
        return TableSchema(
            "unit-test-table",
            columns=(
                Column("name", "str", display=str.upper),
                Column("count", "int"),
                Column("ratio", "float", scale=100.0, format=".1f", header="pct"),
                Column("note", "str", optional=True),
            ),
            title="unit test table",
        )

    def test_row_validation_and_order(self):
        schema = self.schema()
        row = schema.row(ratio=0.25, name="a", count=3)
        assert list(row) == ["name", "count", "ratio", "note"]
        assert row.name == "a" and row["count"] == 3 and row.note is None
        assert row.to_dict() == {"name": "a", "count": 3, "ratio": 0.25, "note": None}

    def test_dtype_and_missing_errors(self):
        schema = self.schema()
        with pytest.raises(ConfigurationError, match="expects int"):
            schema.row(name="a", count=1.5, ratio=0.1)
        with pytest.raises(ConfigurationError, match="required"):
            schema.row(name="a", ratio=0.1)
        with pytest.raises(ConfigurationError, match="unknown column"):
            schema.row(name="a", count=1, ratio=0.1, bogus=1)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate column"):
            TableSchema("t", columns=(Column("x"), Column("x")))

    def test_render_text_scales_and_formats(self):
        schema = self.schema()
        text = schema.render_text([schema.row(name="a", count=3, ratio=0.25)])
        assert "unit test table" in text
        assert "pct" in text          # header override
        assert "25.0" in text         # 0.25 scaled by 100, .1f
        assert "A" in text            # display transform
        assert "-" in text            # optional None renders as dash

    def test_render_csv_and_json_keep_raw_values(self):
        schema = self.schema()
        rows = [schema.row(name="a", count=3, ratio=0.25)]
        csv_text = schema.render_csv(rows)
        assert csv_text.splitlines()[0] == "name,count,ratio,note"
        assert "0.25" in csv_text
        parsed = json.loads(schema.render_json(rows))
        assert parsed == [{"name": "a", "count": 3, "ratio": 0.25, "note": None}]

    def test_registry_lookup_and_builder(self):
        schema = register_table(self.schema(), builder=lambda rs: [])
        assert "unit-test-table" in available_tables()
        assert get_table("unit-test-table").schema is schema
        got_schema, rows = build_table("unit-test-table", None)
        assert got_schema is schema and rows == []
        with pytest.raises(ConfigurationError, match="unknown table"):
            get_table("no-such-table")

    def test_pivot_rows(self):
        rows = [
            {"bench": "cg", "config": "native", "norm": 1.0},
            {"bench": "cg", "config": "hydee", "norm": 1.01},
            {"bench": "lu", "config": "native", "norm": 1.0},
        ]
        pivoted = pivot_rows(rows, index="bench", columns="config", values="norm")
        assert pivoted[0] == {"bench": "cg", "native": 1.0, "hydee": 1.01}


class TestProtocolMetricCollisions:
    def test_subclass_duplicate_metric_raises(self):
        """Satellite: a protocol re-publishing a ProtocolStatistics counter
        name must fail loudly instead of silently colliding."""
        from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol
        from repro.simulator.protocol_api import add_metric

        class Shadowing(CoordinatedCheckpointProtocol):
            def extra_metrics(self):
                info = super().extra_metrics()
                # "rollbacks" is already a ProtocolStatistics counter.
                add_metric(info, "rollbacks", -1)
                return info

        with pytest.raises(ConfigurationError, match="duplicate protocol metric"):
            Shadowing().metrics()

    def test_describe_is_derived_from_metrics(self):
        from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol

        protocol = CoordinatedCheckpointProtocol()
        protocol.clusters = [[0, 1]]
        info = protocol.describe()
        assert info["protocol"] == protocol.name
        assert info["clusters"] == 1
        assert "rollbacks" in info
