"""Cross-checks of the closed-form overhead model (analysis.perf_model).

The analytic helpers are used as a fast path by the Figure 5 / Figure 6
harnesses; these tests pin them against short full-DES runs of the same
configurations so the closed forms cannot silently drift away from what
the simulator actually models.
"""

import math

import pytest

from repro.analysis.netpipe_analysis import run_netpipe_experiment
from repro.analysis.perf_model import (
    analytic_pingpong_series,
    iteration_overhead_estimate,
    message_cost,
    piggyback_policy_rows,
)
from repro.simulator.network import (
    MyrinetMXModel,
    PiggybackPolicy,
    pingpong_half_round_trip,
)

SIZES = [1, 64, 1024, 65536, 1 << 20]


class TestAnalyticPingpongVsSimulation:
    """analytic_pingpong_series must track the simulated NetPIPE sweep."""

    @pytest.fixture(scope="class")
    def simulated(self):
        return run_netpipe_experiment(sizes=SIZES, repeats=1)

    @pytest.fixture(scope="class")
    def analytic(self):
        return analytic_pingpong_series(sizes=SIZES)

    def test_logging_latency_series_matches(self, simulated, analytic):
        sim_series = simulated.latency_reduction_pct("hydee_logging")
        ana_series = analytic["latency_reduction_logging_pct"]
        assert len(sim_series) == len(ana_series) == len(SIZES)
        for size, sim_pct, ana_pct in zip(SIZES, sim_series, ana_series):
            assert sim_pct == pytest.approx(ana_pct, abs=2.0), (
                f"size {size}: simulated {sim_pct:.3f}% vs analytic {ana_pct:.3f}%"
            )

    def test_no_logging_latency_series_matches(self, simulated, analytic):
        sim_series = simulated.latency_reduction_pct("hydee_no_logging")
        ana_series = analytic["latency_reduction_no_logging_pct"]
        for size, sim_pct, ana_pct in zip(SIZES, sim_series, ana_series):
            assert sim_pct == pytest.approx(ana_pct, abs=2.0), (
                f"size {size}: simulated {sim_pct:.3f}% vs analytic {ana_pct:.3f}%"
            )

    def test_both_report_vanishing_large_message_overhead(self, simulated, analytic):
        assert simulated.latency_reduction_pct("hydee_logging")[-1] > -2.0
        assert analytic["latency_reduction_logging_pct"][-1] > -2.0


class TestMessageCost:
    def test_total_latency_matches_simulated_half_round_trip(self):
        # With no piggyback bytes and no logging the model must collapse to
        # the plain network half round trip the simulator charges per send.
        network = MyrinetMXModel()
        for size in SIZES:
            cost = message_cost(network, size, piggyback_bytes=0, logging=False)
            assert cost.total_latency_s == pytest.approx(
                pingpong_half_round_trip(network, size), rel=1e-12
            )
            assert cost.overhead_s == pytest.approx(0.0, abs=1e-15)

    def test_logging_overhead_is_the_memcpy(self):
        network = MyrinetMXModel()
        for size in SIZES:
            logged = message_cost(network, size, piggyback_bytes=0, logging=True)
            plain = message_cost(network, size, piggyback_bytes=0, logging=False)
            memcpy = network.memcpy_time(size)
            assert logged.logging_latency_s == pytest.approx(memcpy, rel=1e-12)
            assert logged.total_latency_s - plain.total_latency_s == pytest.approx(
                memcpy, rel=1e-9
            )

    def test_inline_piggyback_grows_wire_bytes(self):
        network = MyrinetMXModel()
        cost = message_cost(
            network, 64, piggyback_bytes=12,
            policy=PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE,
        )
        assert cost.wire_bytes == 76
        assert cost.overhead_s > 0.0


class TestIterationOverheadEstimate:
    def test_matches_hand_computed_composition(self):
        network = MyrinetMXModel()
        messages, size, frac, compute = 4, 8192, 0.25, 40e-6
        estimate = iteration_overhead_estimate(
            network, messages_per_rank=messages, message_bytes=size,
            logged_fraction=frac, compute_seconds=compute,
        )
        logged = message_cost(network, size, logging=True)
        unlogged = message_cost(network, size, logging=False)
        base = compute + messages * pingpong_half_round_trip(network, size)
        overhead = messages * (frac * logged.overhead_s + (1 - frac) * unlogged.overhead_s)
        assert estimate == pytest.approx((base + overhead) / base, rel=1e-12)

    def test_monotone_in_logged_fraction(self):
        network = MyrinetMXModel()
        estimates = [
            iteration_overhead_estimate(
                network, messages_per_rank=4, message_bytes=8192,
                logged_fraction=f, compute_seconds=40e-6,
            )
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert all(e >= 1.0 for e in estimates)
        assert estimates == sorted(estimates)


class TestPiggybackPolicyRows:
    def test_rows_are_finite_and_cover_sizes(self):
        network = MyrinetMXModel()
        rows = piggyback_policy_rows(network, sizes=SIZES)
        assert len(rows) == len(SIZES)
        for row in rows:
            for value in row.values() if isinstance(row, dict) else row:
                if isinstance(value, float):
                    assert math.isfinite(value)
